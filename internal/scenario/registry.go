package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
)

// This file is the extension surface of the scenario subsystem: a Registry
// maps names — the strings a declarative Spec carries — to algorithm,
// dynamics-family and oracle-property descriptors. Every layer that used
// to switch on hard-coded names (spec validation, the generators, the
// oracle, the minimizer, the CLI listings) resolves through a Registry
// instead, so user-supplied algorithms, dynamics families and properties
// enter campaigns exactly like the built-ins.

// AlgorithmDescriptor registers a robot algorithm under a Spec-referable
// name.
type AlgorithmDescriptor struct {
	// Description is a one-line summary for CLI listings.
	Description string
	// Stock marks the algorithm as part of the frozen victim pool the
	// historical boundary/adversarial samplers draw confinement victims
	// from. Like FamilyDescriptor.Stock it is set only by the registry
	// bootstrap, so recorded campaign streams replay bit for bit no
	// matter what else gets registered; user algorithms face the
	// adversaries through explicitly constructed specs instead.
	Stock bool
	// New returns the algorithm value. It is called once per oracle run;
	// returning a shared stateless value (fresh cores come from NewCore)
	// is the cheapest correct implementation.
	New func() robot.Algorithm
}

// ParamKind says how a declared parameter is interpreted.
type ParamKind int

// Parameter kinds.
const (
	// ParamInt is an integer parameter (Delta, Edge, From, Period, T,
	// Cut, Budget).
	ParamInt ParamKind = iota
	// ParamFloat is a float parameter (P, Up, Down).
	ParamFloat
)

// ParamField declares one Params field a family reads, with its valid
// range. Spec validation checks every declared field generically, so
// family authors state constraints once instead of hand-writing checks.
type ParamField struct {
	// Name is the canonical Params key: one of "p", "up", "down",
	// "delta", "edge", "from", "period", "t", "cut", "budget".
	Name string
	// Kind is the parameter's type.
	Kind ParamKind
	// Min and Max bound the value inclusively (ints are compared as
	// floats; use math.Inf(1) for "no upper bound").
	Min, Max float64
	// Required rejects the zero value: unset required parameters fail
	// validation loudly instead of building a degenerate dynamics.
	// Optional parameters are only range-checked when non-zero.
	Required bool
	// Doc is a one-line summary for CLI listings.
	Doc string
}

// paramValue extracts the declared field from the flat bag.
func paramValue(p Params, name string) (float64, bool) {
	switch name {
	case "p":
		return p.P, true
	case "up":
		return p.Up, true
	case "down":
		return p.Down, true
	case "delta":
		return float64(p.Delta), true
	case "edge":
		return float64(p.Edge), true
	case "from":
		return float64(p.From), true
	case "period":
		return float64(p.Period), true
	case "t":
		return float64(p.T), true
	case "cut":
		return float64(p.Cut), true
	case "budget":
		return float64(p.Budget), true
	}
	return 0, false
}

// FamilyDescriptor registers a dynamics family: everything the scenario
// layers need to validate, sample, build and judge specs of the family.
// Exactly one of Graph (oblivious families, composable) or Build
// (adaptive adversaries, arbitrary Dynamics) must be set; every other
// field is optional.
type FamilyDescriptor struct {
	// Description is a one-line summary for CLI listings.
	Description string
	// Params declares the Params fields the family reads, with ranges;
	// validation checks them generically.
	Params []ParamField
	// Expect, when non-empty, is the property the oracle enforces for
	// specs of this family that leave Expect open (the confinement
	// adversaries pin ExpectConfine). Empty means "derive": the paper's
	// algorithm at an in-threshold (ring, team) must explore, anything
	// else is report-only.
	Expect string
	// ConfineLimit is the distinct-node bound the confine property
	// enforces (0 means the generic two-robot bound of 3).
	ConfineLimit int
	// Stock marks the family as part of the frozen pool the historical
	// uniform/boundary/markov/adversarial samplers draw from. The pool
	// is pinned so recorded campaign streams replay bit for bit; newly
	// registered families are covered by the "registered" generator
	// instead, never by mutating the stock pool.
	Stock bool
	// Explorable marks the family as connected-over-time under its
	// declared parameter ranges: the "registered" generator samples it
	// with an explore expectation.
	Explorable bool
	// Validate, when non-nil, adds family-specific structural checks
	// beyond the generic parameter ranges (team-size constraints, ...).
	Validate func(Spec) error
	// Graph builds the oblivious evolving graph for a spec. Families
	// registered with Graph compose (see ComposeFamilies).
	Graph func(Spec) (dyngraph.EvolvingGraph, error)
	// Build builds the full dynamics for a spec; required for adaptive
	// adversaries, optional override otherwise (it wins over Graph).
	Build func(Spec) (fsync.Dynamics, error)
	// Placements, when non-nil, pins the initial configuration (the
	// confinement proofs require theirs), overriding the spec's
	// placement policy.
	Placements func(Spec) []fsync.Placement
	// Sample draws a parameter point for an n-node ring and candidate
	// horizon; nil means "no parameters". Used by the generators.
	Sample func(src *prng.Source, n, horizon int) Params
	// Horizon picks the run horizon for a sampled parameter point; nil
	// means the standard explore horizon (200·n, floored for small
	// rings and loose recurrence bounds).
	Horizon func(n int, p Params) int
}

// sample draws a parameter point, defaulting to "no parameters".
func (d FamilyDescriptor) sample(src *prng.Source, n, horizon int) Params {
	if d.Sample == nil {
		return Params{}
	}
	return d.Sample(src, n, horizon)
}

// horizonFor picks the run horizon, defaulting to the standard policy.
func (d FamilyDescriptor) horizonFor(n int, p Params) int {
	if d.Horizon == nil {
		return exploreHorizon(n, p)
	}
	return d.Horizon(n, p)
}

// validateSpec runs the generic parameter-range checks and the family's
// own Validate hook.
func (d FamilyDescriptor) validateSpec(name string, s Spec) error {
	for _, f := range d.Params {
		v, ok := paramValue(s.Params, f.Name)
		if !ok {
			return fmt.Errorf("scenario: family %s declares unknown parameter %q", name, f.Name)
		}
		if v == 0 {
			if f.Required {
				return fmt.Errorf("scenario: %s needs parameter %s set (range [%v, %v])", name, f.Name, f.Min, f.Max)
			}
			continue
		}
		if v < f.Min || v > f.Max {
			return fmt.Errorf("scenario: %s parameter %s=%v outside [%v, %v]", name, f.Name, trimParam(v), f.Min, f.Max)
		}
	}
	if d.Validate != nil {
		return d.Validate(s)
	}
	return nil
}

// trimParam renders a parameter value compactly in error messages.
func trimParam(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return trimFloat(v)
}

// build realizes the family's dynamics for a spec.
func (d FamilyDescriptor) build(s Spec) (fsync.Dynamics, error) {
	if d.Build != nil {
		return d.Build(s)
	}
	g, err := d.Graph(s)
	if err != nil {
		return nil, err
	}
	return fsync.Oblivious{G: g}, nil
}

// PropertyInput is everything a property predicate may judge: the spec
// that ran and the oracle's scalar measurements of the execution.
type PropertyInput struct {
	// Spec is the scenario that ran.
	Spec Spec
	// Covered, CoverTime and MaxGap are the exploration metrics
	// (CoverTime is -1 when the ring was never fully covered).
	Covered, CoverTime, MaxGap int
	// Distinct is the number of distinct nodes ever visited.
	Distinct int
	// ExploreViolation is empty when the run satisfies the paper's
	// perpetual-exploration predicate, else the violation message.
	ExploreViolation string
	// ConfineLimit is the family's confinement bound (0 when the family
	// declares none).
	ConfineLimit int
}

// PropertyResult is a property's judgment of one run.
type PropertyResult struct {
	// OK reports that the property holds.
	OK bool
	// Outcome, when non-empty, overrides the verdict's outcome label
	// (the confinement property reports "confined"/"escaped").
	Outcome string
	// Violation explains a failed property.
	Violation string
}

// Property is a named oracle predicate: the Spec.Expect field selects
// which registered property a run is judged by.
type Property struct {
	// Description is a one-line summary for CLI listings.
	Description string
	// Check judges one run.
	Check func(PropertyInput) PropertyResult
}

// Registry maps names to algorithm, family and property descriptors. It
// preserves registration order — the canonical enumeration order of every
// listing and sampler pool — and is safe for concurrent use: campaign
// workers read it under a shared lock while registration (typically at
// process start) takes the exclusive one.
//
// NewRegistry returns a registry preloaded with the built-ins, so custom
// registries extend the paper's world rather than rebuild it; the
// process-wide DefaultRegistry is what Spec.Validate, Run and campaigns
// use unless a RunOptions.Registry / CampaignConfig.Registry overrides it.
type Registry struct {
	mu        sync.RWMutex
	algNames  []string
	algs      map[string]AlgorithmDescriptor
	famNames  []string
	fams      map[string]FamilyDescriptor
	propNames []string
	props     map[string]Property

	// Sampler pools, maintained copy-on-write at registration time so the
	// per-sample hot path reads an immutable slice under RLock instead of
	// rebuilding it per draw. stockAlgs/stockFams/stockGraphFams are the
	// frozen historical pools; explorable is the live "registered"
	// generator pool, with filtered sub-pools memoized per filter string.
	stockAlgs      []string
	stockFams      []string
	stockGraphFams []string
	explorable     []string
	explorableMemo map[string][]string
	weightedMemo   map[string]weightedPool
}

// weightedPool is a parsed GenConfig.FamilyWeights list: the pool names
// in list order with their parallel positive pick weights.
type weightedPool struct {
	names   []string
	weights []int
}

// NewRegistry returns a fresh registry preloaded with the built-in
// algorithms, families and properties.
func NewRegistry() *Registry {
	r := &Registry{
		algs:           map[string]AlgorithmDescriptor{},
		fams:           map[string]FamilyDescriptor{},
		props:          map[string]Property{},
		explorableMemo: map[string][]string{},
		weightedMemo:   map[string]weightedPool{},
	}
	registerBuiltins(r)
	return r
}

// appendPool publishes pool + name as a fresh slice (copy-on-write), so
// readers holding the previous header never observe writes.
func appendPool(pool []string, name string) []string {
	next := make([]string, len(pool)+1)
	copy(next, pool)
	next[len(pool)] = name
	return next
}

var defaultRegistry = sync.OnceValue(NewRegistry)

// DefaultRegistry returns the process-wide registry. Built-ins are
// installed on first use; RegisterAlgorithm/RegisterFamily/
// RegisterProperty (and the pef facade's wrappers) extend it.
func DefaultRegistry() *Registry { return defaultRegistry() }

// validName rejects names that would corrupt canonical spec IDs (which
// join fields with "/" and render params inside "{...}"). Algorithm
// names may contain "/" — the historical ablation names ("pef3+/no-rule2")
// do — because the ID renders the family and params after them, keeping
// IDs parseable from the right.
func validName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("scenario: empty %s name", kind)
	}
	reserved := "/{} \t\n"
	if kind == "algorithm" {
		reserved = "{} \t\n"
	}
	if strings.ContainsAny(name, reserved) {
		return fmt.Errorf("scenario: %s name %q contains reserved characters (%q and whitespace)", kind, name, strings.TrimRight(reserved, " \t\n"))
	}
	return nil
}

// RegisterAlgorithm installs an algorithm descriptor under name.
// Registration fails on an empty or reserved name, a nil constructor, or
// a name collision (silently replacing an algorithm would corrupt
// campaign provenance).
func (r *Registry) RegisterAlgorithm(name string, d AlgorithmDescriptor) error {
	if err := validName("algorithm", name); err != nil {
		return err
	}
	if d.New == nil {
		return fmt.Errorf("scenario: algorithm %q registered with nil constructor", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.algs[name]; dup {
		return fmt.Errorf("scenario: duplicate algorithm registration %q", name)
	}
	r.algs[name] = d
	r.algNames = append(r.algNames, name)
	if d.Stock {
		r.stockAlgs = appendPool(r.stockAlgs, name)
	}
	return nil
}

// RegisterFamily installs a family descriptor under name. Registration
// fails on an empty or reserved name, a descriptor with neither Graph nor
// Build, or a name collision.
func (r *Registry) RegisterFamily(name string, d FamilyDescriptor) error {
	if err := validName("family", name); err != nil {
		return err
	}
	if d.Graph == nil && d.Build == nil {
		return fmt.Errorf("scenario: family %q registered with neither Graph nor Build constructor", name)
	}
	for _, f := range d.Params {
		if _, ok := paramValue(Params{}, f.Name); !ok {
			return fmt.Errorf("scenario: family %q declares unknown parameter %q", name, f.Name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		return fmt.Errorf("scenario: duplicate family registration %q", name)
	}
	r.fams[name] = d
	r.famNames = append(r.famNames, name)
	if d.Stock {
		r.stockFams = appendPool(r.stockFams, name)
		if d.Graph != nil {
			r.stockGraphFams = appendPool(r.stockGraphFams, name)
		}
	}
	if d.Explorable {
		r.explorable = appendPool(r.explorable, name)
		r.explorableMemo = map[string][]string{} // filters may now resolve differently
		r.weightedMemo = map[string]weightedPool{}
	}
	return nil
}

// RegisterProperty installs an oracle property under name; Spec.Expect
// values select it. Registration fails on an empty or reserved name, a
// nil predicate, or a name collision.
func (r *Registry) RegisterProperty(name string, p Property) error {
	if err := validName("property", name); err != nil {
		return err
	}
	if p.Check == nil {
		return fmt.Errorf("scenario: property %q registered with nil predicate", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.props[name]; dup {
		return fmt.Errorf("scenario: duplicate property registration %q", name)
	}
	r.props[name] = p
	r.propNames = append(r.propNames, name)
	return nil
}

// Algorithm instantiates a registered algorithm by name.
func (r *Registry) Algorithm(name string) (robot.Algorithm, error) {
	r.mu.RLock()
	d, ok := r.algs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown algorithm %q (registered: %v)", name, r.AlgorithmNames())
	}
	return d.New(), nil
}

// AlgorithmNames lists the registered algorithm names in registration
// (canonical) order.
func (r *Registry) AlgorithmNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.algNames...)
}

// AlgorithmDescriptor returns the named descriptor.
func (r *Registry) AlgorithmDescriptor(name string) (AlgorithmDescriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.algs[name]
	return d, ok
}

// Family returns the named family descriptor.
func (r *Registry) Family(name string) (FamilyDescriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.fams[name]
	return d, ok
}

// FamilyNames lists the registered family names in registration
// (canonical) order.
func (r *Registry) FamilyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.famNames...)
}

// familyOrErr resolves a family name with the loud-failure error message
// shared by validation and the oracle.
func (r *Registry) familyOrErr(name string) (FamilyDescriptor, error) {
	d, ok := r.Family(name)
	if !ok {
		return FamilyDescriptor{}, fmt.Errorf("scenario: unknown family %q (registered: %v)", name, r.FamilyNames())
	}
	return d, nil
}

// Property returns the named property.
func (r *Registry) Property(name string) (Property, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.props[name]
	return p, ok
}

// PropertyNames lists the registered property names in registration
// (canonical) order.
func (r *Registry) PropertyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.propNames...)
}

// stockAlgorithms returns the frozen victim pool (Stock algorithms, in
// registration order) the boundary/adversarial samplers draw confinement
// victims from. The returned slice is shared and must not be mutated.
func (r *Registry) stockAlgorithms() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stockAlgs
}

// stockFamilies returns the frozen sampler pool (Stock families, in
// registration order): the eight connected-over-time built-ins plus the
// budgeted pointed-edge adversary. Shared slice; do not mutate.
func (r *Registry) stockFamilies() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stockFams
}

// stockGraphFamilies returns the oblivious (composable) subset of the
// stock pool: the connected-over-time families the boundary and markov
// samplers draw. Shared slice; do not mutate.
func (r *Registry) stockGraphFamilies() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stockGraphFams
}

// explorableFamilies returns every registered family the "registered"
// generator may sample with an explore expectation, in registration
// order, optionally restricted to the comma-separated filter. Resolved
// filters are memoized, so the per-sample cost is one map lookup. The
// returned slice is shared and must not be mutated.
func (r *Registry) explorableFamilies(filter string) ([]string, error) {
	r.mu.RLock()
	names := r.explorable
	if filter == "" {
		r.mu.RUnlock()
		if len(names) == 0 {
			return nil, fmt.Errorf("scenario: no explorable families registered")
		}
		return names, nil
	}
	if pool, ok := r.explorableMemo[filter]; ok {
		r.mu.RUnlock()
		return pool, nil
	}
	r.mu.RUnlock()

	allowed := map[string]bool{}
	for _, n := range names {
		allowed[n] = true
	}
	var out []string
	for _, n := range strings.Split(filter, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !allowed[n] {
			return nil, fmt.Errorf("scenario: family filter %q is not a registered explorable family (explorable: %v)", n, names)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: empty family filter %q", filter)
	}
	r.mu.Lock()
	r.explorableMemo[filter] = out
	r.mu.Unlock()
	return out, nil
}

// weightedFamilies parses and validates a FamilyWeights list against the
// explorable pool, memoized per list string like explorableFamilies.
func (r *Registry) weightedFamilies(spec string) (weightedPool, error) {
	r.mu.RLock()
	if wp, ok := r.weightedMemo[spec]; ok {
		r.mu.RUnlock()
		return wp, nil
	}
	names := r.explorable
	r.mu.RUnlock()

	allowed := map[string]bool{}
	for _, n := range names {
		allowed[n] = true
	}
	var wp weightedPool
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, weight, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok {
			return weightedPool{}, fmt.Errorf("scenario: family weight entry %q is not family=weight", entry)
		}
		if !allowed[name] {
			return weightedPool{}, fmt.Errorf("scenario: family weight %q is not a registered explorable family (explorable: %v)", name, names)
		}
		if seen[name] {
			return weightedPool{}, fmt.Errorf("scenario: duplicate family weight %q", name)
		}
		seen[name] = true
		w, err := strconv.Atoi(strings.TrimSpace(weight))
		if err != nil || w < 1 || w > 1_000_000 {
			return weightedPool{}, fmt.Errorf("scenario: family weight %q needs a positive integer weight in [1, 1000000]", entry)
		}
		wp.names = append(wp.names, name)
		wp.weights = append(wp.weights, w)
	}
	if len(wp.names) == 0 {
		return weightedPool{}, fmt.Errorf("scenario: empty family weight list %q", spec)
	}
	r.mu.Lock()
	r.weightedMemo[spec] = wp
	r.mu.Unlock()
	return wp, nil
}

// ExplorableFamilies resolves the family pool the "registered" generator
// samples under cfg: the explorable families after cfg.Families
// filtering, or the cfg.FamilyWeights pool with its pick weights.
// weights is nil for uniform pools, else parallel to names. The returned
// slices are shared and must not be mutated.
func (r *Registry) ExplorableFamilies(cfg GenConfig) (names []string, weights []int, err error) {
	if cfg.FamilyWeights != "" {
		if cfg.Families != "" {
			return nil, nil, fmt.Errorf("scenario: Families and FamilyWeights are mutually exclusive (the weighted list is the pool)")
		}
		wp, err := r.weightedFamilies(cfg.FamilyWeights)
		if err != nil {
			return nil, nil, err
		}
		return wp.names, wp.weights, nil
	}
	pool, err := r.explorableFamilies(cfg.Families)
	return pool, nil, err
}

// ValidateSpec checks a spec against this registry exactly like running
// it would — Spec.Validate with names resolved here instead of the
// process default. The searcher's mutation operators gate candidates on
// it so an invalid mutant never reaches the engine as an error verdict.
func (r *Registry) ValidateSpec(s Spec) error {
	return validateForRun(s, RunOptions{Registry: r})
}

// HorizonFor returns the run horizon the samplers would assign the
// family at ring size n and parameter point p. The searcher re-derives
// horizons after mutating a spec, so a mutation can never manufacture a
// vacuous violation by shrinking the run window under the family's own
// policy.
func (r *Registry) HorizonFor(family string, n int, p Params) (int, error) {
	d, err := r.familyOrErr(family)
	if err != nil {
		return 0, err
	}
	return d.horizonFor(n, p), nil
}

// confineLimit resolves the distinct-node bound the confine property
// enforces for a family — the descriptor's limit, defaulting to 3
// exactly like the property implementation.
func (r *Registry) confineLimit(family string) int {
	if d, ok := r.Family(family); ok && d.ConfineLimit > 0 {
		return d.ConfineLimit
	}
	return 3
}

// ParamValue extracts a declared parameter field from the flat bag by
// its canonical name ("p", "up", "down", "delta", "edge", "from",
// "period", "t", "cut", "budget").
func ParamValue(p Params, name string) (float64, bool) { return paramValue(p, name) }

// SetParamValue writes a declared parameter field by canonical name:
// float parameters take v as-is, integer parameters truncate it. It
// returns false for unknown names, leaving p untouched.
func SetParamValue(p *Params, name string, v float64) bool {
	switch name {
	case "p":
		p.P = v
	case "up":
		p.Up = v
	case "down":
		p.Down = v
	case "delta":
		p.Delta = int(v)
	case "edge":
		p.Edge = int(v)
	case "from":
		p.From = int(v)
	case "period":
		p.Period = int(v)
	case "t":
		p.T = int(v)
	case "cut":
		p.Cut = int(v)
	case "budget":
		p.Budget = int(v)
	default:
		return false
	}
	return true
}

// Expectation derives the enforced property for a spec whose Expect field
// is open: the family's declared default when it has one, otherwise the
// paper's rule (its proven algorithm at an in-threshold (ring, team) must
// explore; anything else is report-only). Unlike the pre-registry path,
// an unregistered family is a loud error here — it used to fall through
// silently to report-only.
func (r *Registry) Expectation(s Spec) (string, error) {
	d, err := r.familyOrErr(s.Family)
	if err != nil {
		return "", err
	}
	if d.Expect != "" {
		return d.Expect, nil
	}
	return algorithmExpectation(s), nil
}

// algorithmExpectation is the family-independent half of the paper's
// rule: the proven algorithm at an in-threshold (ring, team) must
// explore; anything else is report-only.
func algorithmExpectation(s Spec) string {
	if s.Algorithm == paperAlgorithm(s.Ring, s.Robots) && s.Algorithm != "" {
		return ExpectExplore
	}
	return ExpectNone
}

// ComposeFamilies builds a family descriptor that folds the named
// registered oblivious families' edge schedules together under mode
// ("union", "intersect" or "interleave" — see dynamics.NewComposed).
// The members' declared parameters merge into one shared bag (families
// reading the same field share its value), validation requires every
// member's constraints, sampling draws each member's parameters in member
// order, and the horizon is the largest any member asks for. Each member
// builds from a seed derived from the spec seed and its position, so a
// composed run replays exactly.
//
// The result is Explorable only if every member is; register it under a
// "compose:" name (RegisterFamily) to make it campaign-reachable.
func (r *Registry) ComposeFamilies(mode string, members ...string) (FamilyDescriptor, error) {
	switch mode {
	case dynamics.ComposeUnion, dynamics.ComposeIntersect, dynamics.ComposeInterleave:
	default:
		return FamilyDescriptor{}, fmt.Errorf("scenario: unknown compose mode %q (known: %v)", mode, dynamics.ComposeModes())
	}
	if len(members) < 2 {
		return FamilyDescriptor{}, fmt.Errorf("scenario: compose needs at least two member families, got %d", len(members))
	}
	descs := make([]FamilyDescriptor, len(members))
	explorable := true
	var params []ParamField
	seen := map[string]bool{}
	for i, name := range members {
		d, err := r.familyOrErr(name)
		if err != nil {
			return FamilyDescriptor{}, err
		}
		if d.Graph == nil {
			return FamilyDescriptor{}, fmt.Errorf("scenario: compose member %q is not an oblivious (Graph) family", name)
		}
		descs[i] = d
		explorable = explorable && d.Explorable
		for _, f := range d.Params {
			if !seen[f.Name] {
				seen[f.Name] = true
				params = append(params, f)
			}
		}
	}
	names := append([]string(nil), members...)
	dd := descs
	return FamilyDescriptor{
		Description: fmt.Sprintf("%s of %s edge schedules", mode, strings.Join(names, "+")),
		Params:      params,
		Explorable:  explorable,
		Validate: func(s Spec) error {
			for i, d := range dd {
				if d.Validate == nil {
					continue
				}
				if err := d.Validate(memberSpec(s, i)); err != nil {
					return fmt.Errorf("scenario: compose member %s: %w", names[i], err)
				}
			}
			return nil
		},
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			graphs := make([]dyngraph.EvolvingGraph, len(dd))
			for i, d := range dd {
				g, err := d.Graph(memberSpec(s, i))
				if err != nil {
					return nil, fmt.Errorf("scenario: compose member %s: %w", names[i], err)
				}
				graphs[i] = g
			}
			g, err := dynamics.NewComposed(mode, graphs...)
			if err != nil {
				return nil, err
			}
			return g, nil
		},
		Sample: func(src *prng.Source, n, horizon int) Params {
			var p Params
			for _, d := range dd {
				mergeParams(&p, d.sample(src, n, horizon))
			}
			return p
		},
		Horizon: func(n int, p Params) int {
			h := exploreHorizon(n, p)
			for _, d := range dd {
				if mh := d.horizonFor(n, p); mh > h {
					h = mh
				}
			}
			return h
		},
	}, nil
}

// memberSpec derives the spec a compose member builds from: the shared
// parameter bag with a member-distinct seed, so members draw independent
// randomness from one spec seed.
func memberSpec(s Spec, i int) Spec {
	m := s
	m.Seed = prng.Hash3(s.Seed, 0xC0113, uint64(i))
	return m
}

// mergeParams copies b's non-zero fields into p (first member wins on
// shared fields, matching the "shared bag" contract).
func mergeParams(p *Params, b Params) {
	if p.P == 0 {
		p.P = b.P
	}
	if p.Up == 0 {
		p.Up = b.Up
	}
	if p.Down == 0 {
		p.Down = b.Down
	}
	if p.Delta == 0 {
		p.Delta = b.Delta
	}
	if p.Edge == 0 {
		p.Edge = b.Edge
	}
	if p.From == 0 {
		p.From = b.From
	}
	if p.Period == 0 {
		p.Period = b.Period
	}
	if p.T == 0 {
		p.T = b.T
	}
	if p.Cut == 0 {
		p.Cut = b.Cut
	}
	if p.Budget == 0 {
		p.Budget = b.Budget
	}
}
