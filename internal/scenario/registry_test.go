package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"

	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/robot"
)

// testAlg is a minimal registrable algorithm.
type testAlg struct{ name string }

func (a testAlg) Name() string { return a.name }
func (a testAlg) NewCore() robot.Core {
	return robot.Func{AlgName: a.name, Rule: func(dir robot.LocalDir, _ robot.View) robot.LocalDir { return dir }}.NewCore()
}

func graphFamily() FamilyDescriptor {
	return FamilyDescriptor{
		Description: "test",
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dyngraph.NewStatic(s.Ring), nil
		},
	}
}

func TestRegistryRegistrationErrors(t *testing.T) {
	r := NewRegistry()
	// Collisions with built-ins and with fresh registrations.
	if err := r.RegisterAlgorithm("pef3+", AlgorithmDescriptor{New: func() robot.Algorithm { return testAlg{"pef3+"} }}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("builtin algorithm collision: err = %v", err)
	}
	if err := r.RegisterFamily("bernoulli", graphFamily()); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("builtin family collision: err = %v", err)
	}
	if err := r.RegisterProperty(ExpectExplore, Property{Check: func(PropertyInput) PropertyResult { return PropertyResult{} }}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("builtin property collision: err = %v", err)
	}
	if err := r.RegisterFamily("mine", graphFamily()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("mine", graphFamily()); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("fresh family collision: err = %v", err)
	}

	// Nil constructors and predicates.
	if err := r.RegisterAlgorithm("nil-alg", AlgorithmDescriptor{}); err == nil || !strings.Contains(err.Error(), "nil constructor") {
		t.Errorf("nil algorithm constructor: err = %v", err)
	}
	if err := r.RegisterFamily("nil-fam", FamilyDescriptor{Description: "neither"}); err == nil || !strings.Contains(err.Error(), "neither Graph nor Build") {
		t.Errorf("nil family constructors: err = %v", err)
	}
	if err := r.RegisterProperty("nil-prop", Property{}); err == nil || !strings.Contains(err.Error(), "nil predicate") {
		t.Errorf("nil property predicate: err = %v", err)
	}

	// Reserved and empty names.
	if err := r.RegisterFamily("", graphFamily()); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty family name: err = %v", err)
	}
	if err := r.RegisterFamily("a/b", graphFamily()); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("slash in family name: err = %v", err)
	}
	if err := r.RegisterFamily("a b", graphFamily()); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("space in family name: err = %v", err)
	}
	if err := r.RegisterFamily("bad-param", FamilyDescriptor{
		Params: []ParamField{{Name: "warp", Kind: ParamInt}},
		Graph:  graphFamily().Graph,
	}); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("unknown declared parameter: err = %v", err)
	}

	// Unknown-name lookups.
	if _, err := r.Algorithm("warp-drive"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("unknown algorithm lookup: err = %v", err)
	}
	if _, err := r.familyOrErr("warp"); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("unknown family lookup: err = %v", err)
	}
	if _, ok := r.Property("warp"); ok {
		t.Error("unknown property lookup succeeded")
	}
}

// TestRegistryExpectationFailsLoudlyOnUnknownFamily pins the bugfix: an
// unregistered family used to fall through silently to report-only; it
// must now surface as an error everywhere an expectation is derived.
func TestRegistryExpectationFailsLoudlyOnUnknownFamily(t *testing.T) {
	r := NewRegistry()
	s := Spec{Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: PlaceRandom, Family: "wormhole", Horizon: 100}
	if _, err := r.Expectation(s); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Fatalf("Expectation on unregistered family: err = %v", err)
	}
	v := Run(s)
	if v.Err == "" || !strings.Contains(v.Err, "unknown family") || v.OK {
		t.Fatalf("Run on unregistered family must error loudly, got %+v", v)
	}
	// With an explicit expectation the family name must still resolve.
	s.Expect = ExpectNone
	if v := Run(s); v.Err == "" || !strings.Contains(v.Err, "unknown family") {
		t.Fatalf("Run with explicit expect on unregistered family: %+v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("package-level Expectation did not panic on unregistered family")
		}
	}()
	Expectation(Spec{Ring: 8, Robots: 3, Family: "wormhole"})
}

// TestCustomRegistryEndToEnd drives a user-registered family, algorithm
// and property through an isolated registry without touching the process
// default.
func TestCustomRegistryEndToEnd(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterAlgorithm("drifter", AlgorithmDescriptor{
		Description: "keeps direction",
		New:         func() robot.Algorithm { return testAlg{"drifter"} },
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("always-on", FamilyDescriptor{
		Description: "static under a different name",
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dyngraph.NewStatic(s.Ring), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProperty("covered-some", Property{
		Description: "at least one node visited",
		Check: func(in PropertyInput) PropertyResult {
			return PropertyResult{OK: in.Distinct >= 1}
		},
	}); err != nil {
		t.Fatal(err)
	}
	s := Spec{
		Version: Version, Ring: 6, Robots: 1, Algorithm: "drifter",
		Placement: PlaceEven, Family: "always-on", Horizon: 64, Seed: 1,
		Expect: "covered-some",
	}
	v, err := RunWith(context.Background(), s, RunOptions{Registry: r})
	if err != nil || !v.OK {
		t.Fatalf("custom-registry run: err=%v verdict=%+v", err, v)
	}
	// The default registry must not know any of the new names.
	if _, err := DefaultRegistry().Algorithm("drifter"); err == nil {
		t.Error("custom algorithm leaked into the default registry")
	}
	if _, ok := DefaultRegistry().Family("always-on"); ok {
		t.Error("custom family leaked into the default registry")
	}
	// And campaigns thread the registry through config.
	c, err := RunCampaign(context.Background(), CampaignConfig{
		Registry:  r,
		Generator: "registered",
		Gen:       GenConfig{Families: "always-on"},
		Count:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cv := range c.Verdicts {
		if cv.Spec.Family != "always-on" {
			t.Fatalf("family filter ignored: sampled %s", cv.ID)
		}
		if !cv.OK || cv.Err != "" {
			t.Fatalf("always-on verdict %+v", cv)
		}
	}
}

// updatePreregistryGoldens regenerates testdata/preregistry_* when a PR
// deliberately changes report rendering (new columns, new scalar rows).
// The goldens then pin the new rendering for the registry-equivalence
// guarantee the test documents.
var updatePreregistryGoldens = flag.Bool("update-preregistry-goldens", false,
	"regenerate testdata/preregistry_* from the current rendering")

// TestPreRegistryByteIdentity pins the redesign's compatibility
// guarantee: campaign reports over every built-in family are
// byte-identical to the committed pre-registry outputs (generated from
// the last string-switch revision; regenerated when rendering changes
// on purpose — see -update-preregistry-goldens).
func TestPreRegistryByteIdentity(t *testing.T) {
	for _, gen := range []string{"uniform", "boundary", "markov", "adversarial"} {
		cfg := CampaignConfig{Generator: gen, Count: 100, Seeds: []uint64{1, 2}, Workers: 4}
		c, err := RunCampaign(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		var rep, js bytes.Buffer
		if err := c.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if *updatePreregistryGoldens {
			if err := os.WriteFile("testdata/preregistry_"+gen+".txt", rep.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile("testdata/preregistry_"+gen+".json", js.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		wantRep, err := os.ReadFile("testdata/preregistry_" + gen + ".txt")
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := os.ReadFile("testdata/preregistry_" + gen + ".json")
		if err != nil {
			t.Fatal(err)
		}
		if rep.String() != string(wantRep) {
			t.Errorf("%s: report differs from pre-registry golden", gen)
		}
		if js.String() != string(wantJSON) {
			t.Errorf("%s: JSON differs from pre-registry golden", gen)
		}
	}
}

// TestCombinatorFamilyDeterminism pins the composed and periodic
// families: same spec, same verdict, across repeated runs and rebuilt
// dynamics.
func TestCombinatorFamilyDeterminism(t *testing.T) {
	specs := []Spec{
		{Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: PlaceEven,
			Family: "periodic", Params: Params{Period: 4}, Horizon: 6400, Seed: 7},
		{Version: Version, Ring: 9, Robots: 3, Algorithm: "pef3+", Placement: PlaceRandom,
			Family: "compose:union", Params: Params{P: 0.5, Period: 3}, Horizon: 1800, Seed: 11},
		{Version: Version, Ring: 8, Robots: 4, Algorithm: "pef3+", Placement: PlaceAdjacent,
			Family: "compose:intersect", Params: Params{P: 0.8, T: 4}, Horizon: 1600, Seed: 13},
		{Version: Version, Ring: 10, Robots: 3, Algorithm: "pef3+", Placement: PlaceEven,
			Family: "compose:interleave", Params: Params{P: 0.6, Period: 2}, Horizon: 2000, Seed: 17},
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Family, err)
		}
		a, b := Run(s), Run(s)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: verdicts differ across identical runs:\n%+v\n%+v", s.Family, a, b)
		}
		if !a.OK || a.Outcome != "explored" || a.Err != "" {
			t.Errorf("%s: in-threshold combinator spec did not explore: %+v", s.Family, a)
		}
	}
	// The registered generator's stream over the combinator pool is
	// deterministic and prefix-stable, like every other sampler.
	cfg := GenConfig{Families: "periodic,compose:union,compose:intersect,compose:interleave"}
	a, err := Generate("registered", cfg, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("registered", cfg, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("registered generator stream is not deterministic")
	}
	for _, s := range a {
		if s.Expect != ExpectExplore {
			t.Fatalf("combinator sample not explore-expected: %s", s.ID())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated invalid combinator spec %s: %v", s.ID(), err)
		}
	}
}

// TestComposeFamiliesValidation covers the combinator construction
// errors.
func TestComposeFamiliesValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.ComposeFamilies(dynamicsComposeUnion(), "bernoulli"); err == nil || !strings.Contains(err.Error(), "at least two") {
		t.Errorf("single member accepted: %v", err)
	}
	if _, err := r.ComposeFamilies(dynamicsComposeUnion(), "bernoulli", "warp"); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("unknown member accepted: %v", err)
	}
	if _, err := r.ComposeFamilies(dynamicsComposeUnion(), "bernoulli", FamilyConfineOne); err == nil || !strings.Contains(err.Error(), "not an oblivious") {
		t.Errorf("adaptive member accepted: %v", err)
	}
	if _, err := r.ComposeFamilies("xor", "bernoulli", "roving"); err == nil {
		t.Error("unknown mode accepted")
	}
	d, err := r.ComposeFamilies(dynamicsComposeUnion(), "bernoulli", "roving")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Explorable {
		t.Error("union of explorable members is not explorable")
	}
	if err := r.RegisterFamily("compose:mine", d); err != nil {
		t.Fatal(err)
	}
	s := Spec{Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: PlaceEven,
		Family: "compose:mine", Params: Params{P: 0.5, Period: 2}, Horizon: 1600, Seed: 3}
	v, err := RunWith(context.Background(), s, RunOptions{Registry: r})
	if err != nil || !v.OK {
		t.Fatalf("registered composition run: err=%v verdict=%+v", err, v)
	}
}

// dynamicsComposeUnion avoids importing internal/dynamics just for the
// mode constant in this test file.
func dynamicsComposeUnion() string { return "union" }

// TestShardedCampaignMergeByteIdentity pins the multi-process story:
// disjoint shards run separately, their checkpoints merged, reproduce
// the single-process reports byte for byte.
func TestShardedCampaignMergeByteIdentity(t *testing.T) {
	base := CampaignConfig{Generator: "boundary", Count: 50, Seeds: []uint64{1, 2}, Workers: 3}

	whole, err := NewAggregate(base)
	if err != nil {
		t.Fatal(err)
	}
	for v, serr := range StreamCampaign(context.Background(), base) {
		if serr != nil {
			t.Fatal(serr)
		}
		whole.Add(v)
	}
	var wantRep, wantJSON bytes.Buffer
	if err := whole.WriteReport(&wantRep); err != nil {
		t.Fatal(err)
	}
	if err := whole.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}

	const shards = 3
	ckpts := make([]*Checkpoint, shards)
	covered := 0
	for i := 0; i < shards; i++ {
		cfg := base
		cfg.ShardIndex, cfg.ShardCount = i, shards
		cfg.Workers = 1 + i // worker counts must not matter
		agg, err := NewAggregate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v, serr := range StreamCampaign(context.Background(), cfg) {
			if serr != nil {
				t.Fatal(serr)
			}
			agg.Add(v)
		}
		if agg.Done() != agg.End()-agg.Start() {
			t.Fatalf("shard %d incomplete: %d of [%d, %d)", i, agg.Done(), agg.Start(), agg.End())
		}
		covered += agg.Done()
		ckpts[i] = agg.Checkpoint()
	}
	if covered != base.Count*len(base.Seeds) {
		t.Fatalf("shards cover %d of %d scenarios", covered, base.Count*len(base.Seeds))
	}

	// Merge in scrambled order: MergeCheckpoints sorts by block.
	merged, err := MergeCheckpoints(ckpts[2], ckpts[0], ckpts[1])
	if err != nil {
		t.Fatal(err)
	}
	var rep, js bytes.Buffer
	if err := merged.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if rep.String() != wantRep.String() {
		t.Error("merged shard report differs from single-process run")
	}
	if js.String() != wantJSON.String() {
		t.Error("merged shard JSON differs from single-process run")
	}

	// Error cases: missing shard, double shard, incomplete shard.
	if _, err := MergeCheckpoints(ckpts[0], ckpts[2]); err == nil {
		t.Error("gap between shards accepted")
	}
	if _, err := MergeCheckpoints(ckpts[0], ckpts[1], ckpts[2], ckpts[2]); err == nil {
		t.Error("overlapping shards accepted")
	}
	if _, err := MergeCheckpoints(ckpts[1], ckpts[2]); err == nil {
		t.Error("merge without shard 0 accepted")
	}
	partial := *ckpts[1]
	partial.Done--
	partial.OK--
	if len(partial.Families) > 0 {
		partial.Families = append([]FamilyStats(nil), partial.Families...)
		partial.Families[0].Runs-- // keep runs == done so validate passes
		partial.Families[0].OK--
	}
	if _, err := MergeCheckpoints(ckpts[0], &partial, ckpts[2]); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete shard accepted: %v", err)
	}
}

// TestShardResumeRoundTrip halts a shard mid-block, resumes it from its
// checkpoint, and requires the shard's final aggregate to match the
// uninterrupted shard run.
func TestShardResumeRoundTrip(t *testing.T) {
	cfg := CampaignConfig{Generator: "uniform", Count: 30, Seeds: []uint64{9}, ShardIndex: 1, ShardCount: 2}

	full, err := NewAggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, serr := range StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatal(serr)
		}
		full.Add(v)
	}

	halted, err := NewAggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for v, serr := range StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatal(serr)
		}
		halted.Add(v)
		if ran++; ran == 7 {
			break
		}
	}
	ck := halted.Checkpoint()
	if ck.Start != full.Start() || ck.effEnd(cfg.Count) != full.End() {
		t.Fatalf("shard checkpoint block [%d, %d) differs from [%d, %d)", ck.Start, ck.End, full.Start(), full.End())
	}
	resumed, err := NewAggregate(CampaignConfig{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	for v, serr := range StreamCampaign(context.Background(), CampaignConfig{Resume: ck}) {
		if serr != nil {
			t.Fatal(serr)
		}
		resumed.Add(v)
	}
	var a, b bytes.Buffer
	if err := full.WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("resumed shard report differs from uninterrupted shard run")
	}
	// Shard selection conflicts are rejected.
	if _, err := (CampaignConfig{Resume: ck, ShardIndex: 1, ShardCount: 2}).resolved(); err == nil {
		t.Error("resume with explicit shard selection accepted")
	}
	if _, err := (CampaignConfig{ShardIndex: 3, ShardCount: 2, Count: 10}).resolved(); err == nil {
		t.Error("shard index beyond count accepted")
	}
	if _, err := (CampaignConfig{ShardIndex: 1, Count: 10}).resolved(); err == nil {
		t.Error("shard index without count accepted")
	}
	if _, err := (CampaignConfig{ShardCount: 100, Count: 10}).resolved(); err == nil {
		t.Error("more shards than scenarios accepted")
	}
}

// TestRegisteredGeneratorFilterValidation rejects unknown and
// non-explorable family filters up front.
func TestRegisteredGeneratorFilterValidation(t *testing.T) {
	if _, err := Generate("registered", GenConfig{Families: "warp"}, 1, 1); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("unknown family filter: err = %v", err)
	}
	if _, err := Generate("registered", GenConfig{Families: FamilyConfineOne}, 1, 1); err == nil {
		t.Error("non-explorable family filter accepted")
	}
	if _, err := Generate("registered", GenConfig{Families: ", ,"}, 1, 1); err == nil {
		t.Error("empty family filter accepted")
	}
	specs, err := Generate("registered", GenConfig{Families: "periodic"}, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.Family != "periodic" {
			t.Fatalf("filter ignored: sampled %s", s.ID())
		}
	}
}

// TestStockStreamsFrozenUnderRegistration pins the replay guarantee: the
// historical samplers' spec streams must not move when algorithms,
// families or properties are registered afterwards — checkpoint resume
// and shard merging depend on exact sampler replay.
func TestStockStreamsFrozenUnderRegistration(t *testing.T) {
	r := NewRegistry()
	before := map[string][]Spec{}
	for _, gen := range []string{"uniform", "boundary", "markov", "adversarial"} {
		specs, err := r.Generate(gen, GenConfig{}, 17, 60)
		if err != nil {
			t.Fatal(err)
		}
		before[gen] = specs
	}
	if err := r.RegisterAlgorithm("zz-user-alg", AlgorithmDescriptor{
		New: func() robot.Algorithm { return testAlg{"zz-user-alg"} },
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("zz-user-fam", FamilyDescriptor{
		Explorable: true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dyngraph.NewStatic(s.Ring), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	for gen, want := range before {
		got, err := r.Generate(gen, GenConfig{}, 17, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: registration changed the stock spec stream", gen)
		}
	}
	// The registered generator, by contrast, picks up the new family.
	specs, err := r.Generate("registered", GenConfig{Families: "zz-user-fam"}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.Family != "zz-user-fam" {
			t.Fatalf("registered generator missed the new family: %s", s.ID())
		}
	}
}

// TestDynamicsOverrideLabelOnlyFamily pins the WithDynamics contract: an
// injected dynamics with an unregistered family label derives its
// expectation from the algorithm-threshold rule instead of erroring.
func TestDynamicsOverrideLabelOnlyFamily(t *testing.T) {
	s := Spec{
		Version: Version, Ring: 6, Robots: 3, Algorithm: "pef3+",
		Placement: PlaceEven, Family: "external-label", Horizon: 1200, Seed: 1,
	}
	v, err := RunWith(context.Background(), s, RunOptions{
		Dynamics: fsync.Oblivious{G: dyngraph.NewStatic(6)},
	})
	if err != nil {
		t.Fatalf("label-only family errored: %v", err)
	}
	if v.Expect != ExpectExplore || !v.OK || v.Outcome != "explored" {
		t.Fatalf("label-only explore run: %+v", v)
	}
	// A non-paper algorithm under a label-only family is report-only.
	s.Algorithm = "oscillator"
	v, err = RunWith(context.Background(), s, RunOptions{
		Dynamics: fsync.Oblivious{G: dyngraph.NewStatic(6)},
	})
	if err != nil || v.Expect != ExpectNone || !v.OK {
		t.Fatalf("label-only report-only run: err=%v %+v", err, v)
	}
	// Without the override the same label still fails loudly.
	if v := Run(s); v.Err == "" || !strings.Contains(v.Err, "unknown family") {
		t.Fatalf("declarative unregistered family did not error: %+v", v)
	}
}

// TestMinimizeWithCustomRegistry pins that violations found under a
// custom registry shrink against that registry, preserving the real
// failure instead of degrading into an unknown-family config error.
func TestMinimizeWithCustomRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterFamily("zz-static", FamilyDescriptor{
		Explorable: true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dyngraph.NewStatic(s.Ring), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	broken := Spec{
		Version: Version, Ring: 10, Robots: 3, Algorithm: "oscillator",
		Placement: PlaceAdjacent, Family: "zz-static", Horizon: 2000, Seed: 7,
		Expect: ExpectExplore,
	}
	m := r.Minimize(broken)
	if m == broken {
		t.Fatal("custom-registry violation did not shrink")
	}
	mv := runIn(r, m)
	if mv.OK || mv.Err != "" || mv.Violation == "" {
		t.Fatalf("shrunk spec is not a clean predicate violation: %+v", mv)
	}
}
