package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"pef/internal/prng"
)

// sampleAcross draws count specs from every generator under the seed.
func sampleAcross(t *testing.T, seed uint64, count int) []Spec {
	t.Helper()
	var out []Spec
	for _, g := range Generators() {
		specs, err := Generate(g.Name, GenConfig{}, seed, count)
		if err != nil {
			t.Fatalf("Generate(%s): %v", g.Name, err)
		}
		out = append(out, specs...)
	}
	return out
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range sampleAcross(t, 42, 50) {
		data, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", s.ID(), err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.ID(), err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed the spec:\nin  %+v\nout %+v", s, back)
		}
		// Encoding is deterministic.
		again, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(data) {
			t.Fatalf("encode not deterministic:\n%s\n%s", data, again)
		}
	}
}

func TestDecodeSpecRejectsBadInput(t *testing.T) {
	good, err := (Spec{
		Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+",
		Placement: PlaceRandom, Family: "static", Horizon: 1600, Seed: 1,
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "{", "decode"},
		{"unknown field", `{"version":1,"bogus":3}`, "bogus"},
		{"wrong version", strings.Replace(string(good), `"version":1`, `"version":99`, 1), "version"},
		{"zero robots", strings.Replace(string(good), `"robots":3`, `"robots":0`, 1), "robots"},
		{"bad family", strings.Replace(string(good), `"family":"static"`, `"family":"wormhole"`, 1), "family"},
		{"bad algorithm", strings.Replace(string(good), `"algorithm":"pef3+"`, `"algorithm":"magic"`, 1), "algorithm"},
		{"bad placement", strings.Replace(string(good), `"placement":"random"`, `"placement":"pile"`, 1), "placement"},
	}
	for _, c := range cases {
		if _, err := DecodeSpec([]byte(c.data)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Trailing data after the document is rejected; trailing whitespace
	// is not.
	if _, err := DecodeSpec(append(good, []byte(`{"version":99}`)...)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing JSON: err = %v, want trailing-data error", err)
	}
	if _, err := DecodeSpec(append(good, []byte("garbage")...)); err == nil {
		t.Error("trailing garbage: want error")
	}
	if _, err := DecodeSpec(append(good, '\n', ' ')); err != nil {
		t.Errorf("trailing whitespace: %v", err)
	}
}

func TestGenerateRejectsImpossibleBounds(t *testing.T) {
	if _, err := Generate("uniform", GenConfig{MaxRing: 3}, 1, 1); err == nil || !strings.Contains(err.Error(), "MaxRing") {
		t.Errorf("MaxRing 3: err = %v, want MaxRing error", err)
	}
	if _, err := Generate("uniform", GenConfig{MinRing: 10, MaxRing: 6}, 1, 1); err == nil || !strings.Contains(err.Error(), "MinRing") {
		t.Errorf("MaxRing < MinRing: err = %v, want bounds error", err)
	}
	if _, err := Generate("uniform", GenConfig{MaxRobots: 2}, 1, 1); err == nil || !strings.Contains(err.Error(), "MaxRobots") {
		t.Errorf("MaxRobots 2: err = %v, want MaxRobots error", err)
	}
	// An honored explicit cap: every sampled ring stays within it.
	specs, err := Generate("boundary", GenConfig{MaxRing: 5}, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.Ring > 5 {
			t.Fatalf("MaxRing 5 ignored: sampled ring %d in %s", s.Ring, s.ID())
		}
	}
}

func TestSpecIDsDistinctAndDeterministic(t *testing.T) {
	specs := sampleAcross(t, 7, 100)
	seen := map[string]Spec{}
	for _, s := range specs {
		id := s.ID()
		if id != s.ID() {
			t.Fatal("ID is not deterministic")
		}
		if prev, dup := seen[id]; dup && !reflect.DeepEqual(prev, s) {
			t.Fatalf("distinct specs share ID %s:\n%+v\n%+v", id, prev, s)
		}
		seen[id] = s
	}
	// IDs distinguish arbitrarily close parameter values, not just the
	// generators' quantized grid.
	a := Spec{Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: PlaceRandom,
		Family: "bernoulli", Params: Params{P: 0.1234561}, Horizon: 1600, Seed: 1}
	b := a
	b.Params.P = 0.1234559
	if a.ID() == b.ID() {
		t.Fatalf("distinct probabilities share ID %s", a.ID())
	}
}

func TestGenerateDeterministicAndPrefixStable(t *testing.T) {
	for _, g := range Generators() {
		a, err := Generate(g.Name, GenConfig{}, 11, 60)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(g.Name, GenConfig{}, 11, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different spec streams", g.Name)
		}
		// A longer stream extends a shorter one.
		short, err := Generate(g.Name, GenConfig{}, 11, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(short, a[:20]) {
			t.Fatalf("%s: stream is not prefix-stable", g.Name)
		}
		// A different seed changes the stream.
		c, err := Generate(g.Name, GenConfig{}, 12, 60)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: seeds 11 and 12 produced identical streams", g.Name)
		}
	}
}

func TestGeneratedSpecsValidate(t *testing.T) {
	for _, s := range sampleAcross(t, 99, 200) {
		if err := s.Validate(); err != nil {
			t.Fatalf("generated invalid spec %+v: %v", s, err)
		}
		if s.Expect == "" {
			t.Fatalf("generator left expectation open: %s", s.ID())
		}
	}
}

func TestExpectation(t *testing.T) {
	cases := []struct {
		n, k   int
		alg    string
		family string
		want   string
	}{
		{8, 3, "pef3+", "bernoulli", ExpectExplore},
		{3, 2, "pef2", "static", ExpectExplore},
		{2, 1, "pef1", "roving", ExpectExplore},
		{8, 3, "keep-direction", "bernoulli", ExpectNone},
		{8, 2, "pef3+", "bernoulli", ExpectNone},
		{3, 2, "pef3+", "static", ExpectNone},
		{8, 1, "pef3+", FamilyConfineOne, ExpectConfine},
		{8, 2, "pef2", FamilyConfineTwo, ExpectConfine},
	}
	for _, c := range cases {
		s := Spec{Ring: c.n, Robots: c.k, Algorithm: c.alg, Family: c.family}
		if got := Expectation(s); got != c.want {
			t.Errorf("Expectation(n=%d k=%d %s %s) = %s, want %s", c.n, c.k, c.alg, c.family, got, c.want)
		}
	}
}

func TestOracleExploresInThreshold(t *testing.T) {
	// A representative in-threshold spec per family must satisfy the
	// exploration predicate.
	src := prng.NewSource(5)
	for _, family := range DefaultRegistry().stockGraphFamilies() {
		p, _ := sampleFamily(DefaultRegistry(), src, family, 8)
		s := Spec{
			Version: Version, Ring: 8, Robots: 3, Algorithm: "pef3+",
			Placement: PlaceEven, Family: family, Params: p,
			Horizon: exploreHorizon(8, p), Seed: 23,
		}
		v := Run(s)
		if !v.OK || v.Outcome != "explored" || v.Err != "" {
			t.Errorf("%s: verdict %+v", family, v)
		}
		if v.Covered != 8 || v.CoverTime < 0 {
			t.Errorf("%s: missing metrics in verdict %+v", family, v)
		}
	}
}

func TestOracleConfinesUnderThreshold(t *testing.T) {
	one := Run(Spec{
		Version: Version, Ring: 8, Robots: 1, Algorithm: "pef3+",
		Placement: PlaceRandom, Family: FamilyConfineOne, Horizon: 512, Seed: 3,
	})
	if !one.OK || one.Outcome != "confined" || one.Distinct > 2 {
		t.Fatalf("confine-one verdict %+v", one)
	}
	two := Run(Spec{
		Version: Version, Ring: 8, Robots: 2, Algorithm: "bounce-on-missing",
		Placement: PlaceRandom, Family: FamilyConfineTwo, Horizon: 512, Seed: 3,
	})
	if !two.OK || two.Outcome != "confined" || two.Distinct > 3 {
		t.Fatalf("confine-two verdict %+v", two)
	}
}

func TestOracleFlagsImpossibleExpectation(t *testing.T) {
	// Demanding exploration from one robot on an 8-ring under the
	// Theorem 5.1 adversary must yield a violation, not a pass: the
	// oracle distinguishes "predicate fails" from "run errored".
	v := Run(Spec{
		Version: Version, Ring: 8, Robots: 1, Algorithm: "pef3+",
		Placement: PlaceRandom, Family: FamilyConfineOne, Horizon: 512, Seed: 3,
		Expect: ExpectExplore,
	})
	if v.OK || v.Violation == "" || v.Err != "" {
		t.Fatalf("want explore violation, got %+v", v)
	}
}

func TestOracleErrorVerdictOnInvalidSpec(t *testing.T) {
	v := Run(Spec{Version: Version, Ring: 1, Robots: 1, Algorithm: "pef3+", Placement: PlaceRandom, Family: "static", Horizon: 10})
	if v.Err == "" || v.OK {
		t.Fatalf("invalid spec must yield an error verdict, got %+v", v)
	}
}

func TestCampaignByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, string, []string) {
		var order []string
		c, err := RunCampaign(context.Background(), CampaignConfig{
			Generator: "boundary",
			Count:     60,
			Seeds:     []uint64{1, 2},
			Workers:   workers,
			OnVerdict: func(v Verdict) { order = append(order, v.ID) },
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var rep, js strings.Builder
		if err := c.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return rep.String(), js.String(), order
	}
	rep1, js1, order1 := render(1)
	rep8, js8, order8 := render(8)
	if rep1 != rep8 {
		t.Error("campaign report differs between workers=1 and workers=8")
	}
	if js1 != js8 {
		t.Error("campaign JSON differs between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(order1, order8) {
		t.Error("OnVerdict order differs between worker counts")
	}
	if len(order1) != 120 {
		t.Fatalf("streamed %d verdicts, want 120", len(order1))
	}
}

func TestCampaignZeroViolationsInThreshold(t *testing.T) {
	// The acceptance predicate of the subsystem: generated in-threshold
	// scenarios must satisfy the paper's predicates with zero
	// violations.
	for _, gen := range []string{"uniform", "adversarial"} {
		c, err := RunCampaign(context.Background(), CampaignConfig{
			Generator: gen, Count: 40, Seeds: []uint64{5},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range c.Violations() {
			t.Errorf("%s: violation %s: %s%s", gen, v.ID, v.Violation, v.Err)
		}
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := RunCampaign(ctx, CampaignConfig{Generator: "uniform", Count: 10, Seeds: []uint64{1}})
	if err == nil {
		t.Fatal("want context error")
	}
	if len(c.Verdicts) != 10 {
		t.Fatalf("got %d verdict slots, want 10", len(c.Verdicts))
	}
	cancelledErrs := 0
	for _, v := range c.Verdicts {
		if strings.Contains(v.Err, "cancelled") {
			cancelledErrs++
		}
	}
	if cancelledErrs == 0 {
		t.Fatal("no verdict carries the cancellation error")
	}
}
