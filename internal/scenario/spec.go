// Package scenario is the declarative scenario layer between the public
// facade and the batch engine: a Spec pins down one complete exploration
// setting (ring, team, algorithm, placement, dynamics family + parameters,
// horizon, seed), generators sample arbitrarily many Specs per seed over
// the full parameter space, an oracle runs a Spec and checks the paper's
// predicates against the outcome, and a Campaign shards generated Specs
// across the harness worker pool with the same reorder-buffer determinism
// as the experiment index.
//
// Where the experiment harness reproduces the paper's hand-picked tables,
// the scenario subsystem checks the paper's *quantified* statements — over
// every connected-over-time ring the generators can reach — at sweep
// scale: millions of generated scenarios instead of a dozen curated ones.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Version is the current Spec format version, embedded in every encoded
// spec and campaign report so stored sweeps remain interpretable.
const Version = 1

// Expectation values: what the paper predicts for a spec, hence what the
// oracle enforces.
const (
	// ExpectExplore: the paper's possibility theorems apply — the run
	// must cover the ring and keep revisiting every node.
	ExpectExplore = "explore"
	// ExpectConfine: a theorem adversary drives the dynamics — the
	// robots must stay inside the proven confinement bound.
	ExpectConfine = "confine"
	// ExpectNone: the paper makes no claim (e.g. under-threshold teams
	// against oblivious dynamics); the oracle only reports metrics.
	ExpectNone = "none"
)

// Placement policies.
const (
	// PlaceRandom draws distinct nodes and chiralities from the spec seed.
	PlaceRandom = "random"
	// PlaceEven spreads the robots evenly, all right-is-clockwise.
	PlaceEven = "even"
	// PlaceAdjacent packs the robots on consecutive nodes from node 0.
	PlaceAdjacent = "adjacent"
)

// Canonical names of the built-in adaptive adversary families (registered
// by the bootstrap alongside the oblivious ones; see registry.go).
const (
	// FamilyBlockPointed is the budgeted stress adversary: every pointed
	// edge is removed, but nothing stays absent beyond Params.Budget.
	FamilyBlockPointed = "block-pointed"
	// FamilyConfineOne is the Theorem 5.1 adversary against one robot.
	FamilyConfineOne = "confine-one"
	// FamilyConfineTwo is the Theorem 4.1 adversary against two robots.
	FamilyConfineTwo = "confine-two"
)

// Params is the flat parameter bag of a spec's dynamics family, mirroring
// dynamics.FamilyParams plus the adaptive adversaries' Budget. Unused
// fields stay zero and are omitted from JSON, so encoded specs carry
// exactly the parameters their family reads.
type Params struct {
	P      float64 `json:"p,omitempty"`
	Up     float64 `json:"up,omitempty"`
	Down   float64 `json:"down,omitempty"`
	Delta  int     `json:"delta,omitempty"`
	Edge   int     `json:"edge,omitempty"`
	From   int     `json:"from,omitempty"`
	Period int     `json:"period,omitempty"`
	T      int     `json:"t,omitempty"`
	Cut    int     `json:"cut,omitempty"`
	Budget int     `json:"budget,omitempty"`
}

// Spec declares one scenario completely: running the same Spec always
// replays the same execution bit for bit. The JSON encoding is
// deterministic (fixed field order, no maps), and DecodeSpec(Encode(s))
// is the identity on valid specs.
type Spec struct {
	// Version is the format version (always Version on encode).
	Version int `json:"version"`
	// Ring is the ring size n (>= 2).
	Ring int `json:"ring"`
	// Robots is the team size k (0 < k < n).
	Robots int `json:"robots"`
	// Algorithm is the robot algorithm by registry name (e.g. "pef3+").
	Algorithm string `json:"algorithm"`
	// Placement selects the initial configuration policy.
	Placement string `json:"placement"`
	// Family names the dynamics family by registry name (built-in or
	// registered via RegisterFamily).
	Family string `json:"family"`
	// Params is the family's parameter point.
	Params Params `json:"params"`
	// Horizon is the number of synchronous rounds to execute.
	Horizon int `json:"horizon"`
	// Seed drives placement and dynamics pseudo-randomness.
	Seed uint64 `json:"seed"`
	// Expect is the paper's prediction for this spec (ExpectExplore,
	// ExpectConfine, or ExpectNone). Empty means "derive": the oracle
	// fills it via Expectation.
	Expect string `json:"expect,omitempty"`
}

// Encode renders the spec as deterministic single-line JSON.
func (s Spec) Encode() ([]byte, error) {
	s.Version = Version
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// DecodeSpec parses and validates an encoded spec. Decode is the inverse
// of Encode on valid specs.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: decode: trailing data after spec")
	}
	if s.Version != Version {
		return Spec{}, fmt.Errorf("scenario: unsupported spec version %d (want %d)", s.Version, Version)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ID returns the canonical string identifier of the spec: a compact,
// deterministic rendering of every field that distinguishes two scenarios.
// Equal specs have equal IDs and distinct valid specs have distinct IDs.
func (s Spec) ID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d/n%d.k%d/%s/%s/%s", Version, s.Ring, s.Robots, s.Algorithm, s.Placement, s.Family)
	b.WriteString(s.Params.suffix())
	fmt.Fprintf(&b, "/h%d/s%d", s.Horizon, s.Seed)
	if s.Expect != "" {
		b.WriteString("/" + s.Expect)
	}
	return b.String()
}

// suffix renders the set parameters in fixed order, e.g. "{p=0.6,d=4}".
func (p Params) suffix() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if p.P != 0 {
		add("p", trimFloat(p.P))
	}
	if p.Up != 0 {
		add("up", trimFloat(p.Up))
	}
	if p.Down != 0 {
		add("down", trimFloat(p.Down))
	}
	if p.Delta != 0 {
		add("d", fmt.Sprint(p.Delta))
	}
	if p.Edge != 0 {
		add("e", fmt.Sprint(p.Edge))
	}
	if p.From != 0 {
		add("from", fmt.Sprint(p.From))
	}
	if p.Period != 0 {
		add("per", fmt.Sprint(p.Period))
	}
	if p.T != 0 {
		add("t", fmt.Sprint(p.T))
	}
	if p.Cut != 0 {
		add("cut", fmt.Sprint(p.Cut))
	}
	if p.Budget != 0 {
		add("b", fmt.Sprint(p.Budget))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// trimFloat renders a probability compactly ("0.6") yet exactly: the
// shortest decimal that round-trips, so distinct parameter values never
// collide in canonical IDs.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Validate checks structural well-formedness against the default
// registry: sizes in range, registered algorithm/placement/family/
// expectation names, declared parameter ranges, and the family's own
// structural constraints. It is exactly the override-free case of the
// oracle's validateForRun, so the declarative and run-time rule sets
// cannot drift.
func (s Spec) Validate() error {
	return validateForRun(s, RunOptions{})
}

// paperAlgorithm returns the paper algorithm proven to explore at (n, k) —
// the computable region of Table 1: three robots always suffice on n > k,
// and the small rings have their dedicated algorithms (two robots on the
// 3-ring, one on the 2-ring). Empty when the paper offers none.
func paperAlgorithm(n, k int) string {
	switch {
	case k >= 3 && n > k:
		return "pef3+"
	case k == 2 && n == 3:
		return "pef2"
	case k == 1 && n == 2:
		return "pef1"
	}
	return ""
}

// Expectation derives the paper's prediction for the spec via the default
// registry:
//
//   - families declaring a default property (the confinement adversaries
//     declare ExpectConfine) → that property;
//   - the matching paper algorithm on an in-threshold (n, k) against any
//     connected-over-time family → ExpectExplore;
//   - anything else (under-threshold teams on oblivious dynamics, baseline
//     algorithms, mismatched paper algorithms) → ExpectNone.
//
// Unregistered families used to fall through silently to ExpectNone
// (report-only); they are a loud failure now — Expectation panics, and the
// error-returning Registry.Expectation is the checked form the oracle
// uses.
func Expectation(s Spec) string {
	exp, err := DefaultRegistry().Expectation(s)
	if err != nil {
		panic(err)
	}
	return exp
}
