package scenario

import (
	"reflect"
	"testing"
)

// TestSpecIDCoversEveryField is the cache-key audit: the canonical ID
// must change when any verdict-affecting Spec field changes, because
// pefserve's verdict cache addresses content by it. Every field of Spec
// and Params is perturbed individually; each perturbation must produce
// an ID distinct from the base and from every other perturbation.
//
// Version is the one deliberate exception: the ID renders the process
// constant (every in-process spec has it — DecodeSpec rejects foreign
// versions) and the cache fingerprint hashes scenario.Version, so a
// format bump still invalidates stored verdicts.
func TestSpecIDCoversEveryField(t *testing.T) {
	// Field-count tripwires: adding a field to Spec or Params without
	// extending this test (and hence auditing the ID and the verdict
	// cache key) must fail loudly here.
	if n := reflect.TypeOf(Spec{}).NumField(); n != 10 {
		t.Fatalf("Spec has %d fields (this test covers 10): extend the ID, this audit, and the verdict-cache key", n)
	}
	if n := reflect.TypeOf(Params{}).NumField(); n != 10 {
		t.Fatalf("Params has %d fields (this test covers 10): extend the ID, this audit, and the verdict-cache key", n)
	}

	base := Spec{
		Version:   Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: PlaceEven,
		Family:    "bernoulli",
		Params:    Params{P: 0.5},
		Horizon:   200,
		Seed:      7,
	}
	perturbed := map[string]Spec{}
	mut := func(name string, f func(*Spec)) {
		s := base
		f(&s)
		perturbed[name] = s
	}
	mut("Ring", func(s *Spec) { s.Ring = 9 })
	mut("Robots", func(s *Spec) { s.Robots = 2 })
	mut("Algorithm", func(s *Spec) { s.Algorithm = "pef2" })
	mut("Placement", func(s *Spec) { s.Placement = PlaceAdjacent })
	mut("Family", func(s *Spec) { s.Family = "static" })
	mut("Params.P", func(s *Spec) { s.Params.P = 0.25 })
	mut("Params.Up", func(s *Spec) { s.Params.Up = 0.5 })
	mut("Params.Down", func(s *Spec) { s.Params.Down = 0.5 })
	mut("Params.Delta", func(s *Spec) { s.Params.Delta = 4 })
	mut("Params.Edge", func(s *Spec) { s.Params.Edge = 2 })
	mut("Params.From", func(s *Spec) { s.Params.From = 3 })
	mut("Params.Period", func(s *Spec) { s.Params.Period = 5 })
	mut("Params.T", func(s *Spec) { s.Params.T = 6 })
	mut("Params.Cut", func(s *Spec) { s.Params.Cut = 1 })
	mut("Params.Budget", func(s *Spec) { s.Params.Budget = 12 })
	mut("Horizon", func(s *Spec) { s.Horizon = 201 })
	mut("Seed", func(s *Spec) { s.Seed = 8 })
	mut("Expect", func(s *Spec) { s.Expect = ExpectNone })

	seen := map[string]string{base.ID(): "base"}
	for name, s := range perturbed {
		id := s.ID()
		if prev, dup := seen[id]; dup {
			t.Errorf("perturbing %s left the ID identical to %s: %q", name, prev, id)
			continue
		}
		seen[id] = name
	}
}

// TestSpecIDParamValuesDistinct guards the float rendering: parameter
// values that differ only past a short decimal prefix must still get
// distinct IDs (trimFloat is shortest-round-trip, not fixed-precision).
func TestSpecIDParamValuesDistinct(t *testing.T) {
	a := Spec{Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: PlaceEven,
		Family: "bernoulli", Params: Params{P: 0.1}, Horizon: 100, Seed: 1}
	b := a
	b.Params.P = 0.1000000001
	if a.ID() == b.ID() {
		t.Fatalf("distinct P values collided in the ID: %q", a.ID())
	}
}
