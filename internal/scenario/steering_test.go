package scenario

import (
	"context"
	"strings"
	"testing"

	"pef/internal/prng"
)

// Equal-weight FamilyWeights must be draw-for-draw identical to the
// unweighted Families pool: pickWeighted spends exactly one Intn either
// way, so biasing the pool never shifts the sampling stream.
func TestFamilyWeightsUniformBitCompatible(t *testing.T) {
	plain, err := Generate("registered", GenConfig{Families: "bernoulli,periodic"}, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Generate("registered", GenConfig{FamilyWeights: "bernoulli=1,periodic=1"}, 42, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != weighted[i] {
			t.Fatalf("spec %d diverges: %s vs %s", i, plain[i].ID(), weighted[i].ID())
		}
	}
}

// A heavily skewed weighting must actually skew the family mix, while
// still only drawing registered explorable families.
func TestFamilyWeightsSkew(t *testing.T) {
	specs, err := Generate("registered", GenConfig{FamilyWeights: "bernoulli=99,periodic=1"}, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, s := range specs {
		count[s.Family]++
	}
	if len(count) > 2 {
		t.Fatalf("weighted pool leaked families: %v", count)
	}
	if count["bernoulli"] < 150 {
		t.Fatalf("99:1 weighting produced only %d/200 bernoulli specs", count["bernoulli"])
	}
}

// FamilyWeights validation must reject malformed lists loudly.
func TestFamilyWeightsValidation(t *testing.T) {
	for _, bad := range []struct{ weights, wantErr string }{
		{"bernoulli", "family=weight"},
		{"bernoulli=0", "weight"},
		{"bernoulli=-2", "weight"},
		{"bernoulli=1000001", "weight"},
		{"bernoulli=x", "weight"},
		{"nosuch=1", "explorable"},
		{"confine-one=1", "explorable"},
		{"bernoulli=1,bernoulli=2", "duplicate"},
	} {
		_, err := Generate("registered", GenConfig{FamilyWeights: bad.weights}, 1, 1)
		if err == nil {
			t.Errorf("FamilyWeights %q accepted", bad.weights)
			continue
		}
		if !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("FamilyWeights %q: error %q lacks %q", bad.weights, err, bad.wantErr)
		}
	}
	if _, err := Generate("registered", GenConfig{Families: "bernoulli", FamilyWeights: "bernoulli=1"}, 1, 1); err == nil {
		t.Error("Families and FamilyWeights accepted together")
	}
}

// StreamSpecs must yield one verdict per input spec, in input order,
// identical to running each spec alone — for any worker count.
func TestStreamSpecsOrderAndIdentity(t *testing.T) {
	specs, err := Generate("uniform", GenConfig{}, 9, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Verdict, len(specs))
	for i, s := range specs {
		want[i] = Run(s)
	}
	for _, workers := range []int{1, 4} {
		i := 0
		for v, serr := range StreamSpecs(context.Background(), CampaignConfig{Workers: workers}, specs) {
			if serr != nil {
				t.Fatal(serr)
			}
			if i >= len(specs) {
				t.Fatal("more verdicts than specs")
			}
			if v.ID != want[i].ID || v.Outcome != want[i].Outcome || v.OK != want[i].OK ||
				v.CoverTime != want[i].CoverTime || v.MaxGap != want[i].MaxGap {
				t.Fatalf("workers=%d verdict %d diverges: %+v vs %+v", workers, i, v, want[i])
			}
			i++
		}
		if i != len(specs) {
			t.Fatalf("workers=%d yielded %d of %d verdicts", workers, i, len(specs))
		}
	}
}

// SampleFamilySpec must reject non-explorable families and be a pure
// function of the source state.
func TestSampleFamilySpec(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.SampleFamilySpec(GenConfig{}, FamilyConfineOne, prng.NewSource(1)); err == nil {
		t.Error("confinement adversary accepted as explorable sample")
	}
	if _, err := r.SampleFamilySpec(GenConfig{}, "nosuch", prng.NewSource(1)); err == nil {
		t.Error("unknown family accepted")
	}
	a, err := r.SampleFamilySpec(GenConfig{}, "bernoulli", prng.NewSource(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SampleFamilySpec(GenConfig{}, "bernoulli", prng.NewSource(77))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equal sources sampled different specs: %s vs %s", a.ID(), b.ID())
	}
	if a.Expect != ExpectExplore {
		t.Fatalf("explorable sample carries expectation %q", a.Expect)
	}
	if err := r.ValidateSpec(a); err != nil {
		t.Fatal(err)
	}
}

// Margins must reproduce exactly the headrooms campaign aggregation
// records, and flag violations as negative.
func TestMargins(t *testing.T) {
	r := DefaultRegistry()
	v := Verdict{
		Spec:      Spec{Family: "bernoulli", Horizon: 1000},
		Expect:    ExpectExplore,
		Outcome:   "explored",
		CoverTime: 400,
		MaxGap:    100,
	}
	ms := r.Margins(v)
	if len(ms) != 2 {
		t.Fatalf("want 2 margins, got %+v", ms)
	}
	if ms[0].Metric != "coverSlack" || ms[0].Value != 600 || ms[0].Rel != 600 {
		t.Errorf("coverSlack margin %+v", ms[0])
	}
	if ms[1].Metric != "gapHeadroom" || ms[1].Value != 400 || ms[1].Rel != 800 {
		t.Errorf("gapHeadroom margin %+v", ms[1])
	}
	conf := Verdict{
		Spec:     Spec{Family: FamilyConfineTwo},
		Expect:   ExpectConfine,
		Distinct: 5,
	}
	cms := r.Margins(conf)
	if len(cms) != 1 || cms[0].Metric != "confineHeadroom" || cms[0].Value >= 0 {
		t.Errorf("violated confinement margins %+v", cms)
	}
	if got := r.Margins(Verdict{Err: "boom"}); got != nil {
		t.Errorf("errored verdict has margins %+v", got)
	}
}
