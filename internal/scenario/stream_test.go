package scenario

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

func campaignCfg(workers int) CampaignConfig {
	return CampaignConfig{
		Generator: "boundary",
		Gen:       GenConfig{MaxRing: 8},
		Count:     30,
		Seeds:     []uint64{1, 2},
		Workers:   workers,
	}
}

// renderCampaign returns the campaign's two report renderings.
func renderCampaign(t *testing.T, c *Campaign) (string, string) {
	t.Helper()
	var rep, js bytes.Buffer
	if err := c.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return rep.String(), js.String()
}

// TestStreamCampaignMatchesRunCampaign is the acceptance criterion of the
// streaming redesign: the streamed path — verdicts folded online into an
// Aggregate — must produce byte-identical WriteReport/WriteJSON output to
// the collected RunCampaign path, for any worker count.
func TestStreamCampaignMatchesRunCampaign(t *testing.T) {
	collected, err := RunCampaign(context.Background(), campaignCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	wantRep, wantJSON := renderCampaign(t, collected)

	for _, workers := range []int{1, 3, 8} {
		cfg := campaignCfg(workers)
		agg, err := NewAggregate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for v, serr := range StreamCampaign(context.Background(), cfg) {
			if serr != nil {
				t.Fatalf("workers=%d: stream error: %v", workers, serr)
			}
			agg.Add(v)
			ids = append(ids, v.ID)
		}
		if len(ids) != len(collected.Verdicts) {
			t.Fatalf("workers=%d: streamed %d verdicts, collected %d", workers, len(ids), len(collected.Verdicts))
		}
		for i, v := range collected.Verdicts {
			if v.ID != ids[i] {
				t.Fatalf("workers=%d: canonical order diverges at %d: %s vs %s", workers, i, ids[i], v.ID)
			}
		}
		var rep, js bytes.Buffer
		if err := agg.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if err := agg.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if rep.String() != wantRep {
			t.Fatalf("workers=%d: streamed report differs from collected:\n%s\n--- want ---\n%s", workers, rep.String(), wantRep)
		}
		if js.String() != wantJSON {
			t.Fatalf("workers=%d: streamed JSON differs from collected", workers)
		}
	}
}

// TestCheckpointResumeReproducesUninterruptedRun kills a campaign after N
// verdicts, checkpoints it, resumes from the decoded checkpoint, and
// requires the final reports to be byte-identical to the uninterrupted
// run — for several cut points including the seed boundary.
func TestCheckpointResumeReproducesUninterruptedRun(t *testing.T) {
	full, err := RunCampaign(context.Background(), campaignCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	wantRep, wantJSON := renderCampaign(t, full)
	total := len(full.Verdicts)

	for _, cut := range []int{0, 7, 30, total - 1} {
		cfg := campaignCfg(2)
		agg, err := NewAggregate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for v, serr := range StreamCampaign(context.Background(), cfg) {
			if n == cut {
				break // the "kill": nothing after this round is seen
			}
			if serr != nil {
				t.Fatal(serr)
			}
			agg.Add(v)
			n++
		}
		data, err := agg.Checkpoint().Encode()
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		ckpt, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if ckpt.Done != cut {
			t.Fatalf("cut=%d: checkpoint Done=%d", cut, ckpt.Done)
		}

		resumed, err := RunCampaign(context.Background(), CampaignConfig{Workers: 3, Resume: ckpt})
		if err != nil {
			t.Fatalf("cut=%d: resume: %v", cut, err)
		}
		if len(resumed.Verdicts) != total-cut {
			t.Fatalf("cut=%d: resumed ran %d scenarios, want %d", cut, len(resumed.Verdicts), total-cut)
		}
		gotRep, gotJSON := renderCampaign(t, resumed)
		if gotRep != wantRep {
			t.Fatalf("cut=%d: resumed report differs from uninterrupted run:\n%s\n--- want ---\n%s", cut, gotRep, wantRep)
		}
		if gotJSON != wantJSON {
			t.Fatalf("cut=%d: resumed JSON differs from uninterrupted run", cut)
		}
		if resumed.Total() != total || resumed.Checkpoint().Done != total {
			t.Fatalf("cut=%d: resumed totals wrong: %d", cut, resumed.Total())
		}
	}
}

// TestResumeRejectsConflictingConfig pins the safety contract: a resumed
// campaign cannot silently continue under different parameters.
func TestResumeRejectsConflictingConfig(t *testing.T) {
	cfg := campaignCfg(1)
	agg, err := NewAggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := agg.Checkpoint()
	for name, bad := range map[string]CampaignConfig{
		"generator": {Generator: "uniform", Resume: ckpt},
		"count":     {Count: 99, Resume: ckpt},
		"seeds":     {Seeds: []uint64{9}, Resume: ckpt},
		"gen":       {Gen: GenConfig{MaxRing: 14}, Resume: ckpt},
	} {
		if _, err := RunCampaign(context.Background(), bad); err == nil {
			t.Errorf("conflicting %s accepted on resume", name)
		}
	}
	// Matching explicit values are fine.
	if _, err := RunCampaign(context.Background(), CampaignConfig{Generator: "boundary", Resume: ckpt}); err != nil {
		t.Errorf("matching generator rejected: %v", err)
	}
}

// TestCheckpointRejectsCorruption checks the decode-side validation.
func TestCheckpointRejectsCorruption(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte(`{"version":99}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := DecodeCheckpoint([]byte(`{"version":1,"generator":"uniform","gen":{},"count":2,"seeds":[1],"done":9,"ok":0}`)); err == nil {
		t.Error("done beyond campaign accepted")
	}
	if _, err := DecodeCheckpoint([]byte(`{"version":1,"generator":"uniform","gen":{},"count":5,"seeds":[1],"done":2,"ok":1,"families":[{"family":"static","runs":1,"ok":1}]}`)); err == nil {
		t.Error("family runs disagreeing with done accepted")
	}
}

// TestAggregateMergePartition checks the merge-based claim: any in-order
// partition of the verdict stream, aggregated separately and merged,
// reproduces the whole-stream aggregate's reports.
func TestAggregateMergePartition(t *testing.T) {
	cfg := campaignCfg(1)
	c, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, wantJSON := renderCampaign(t, c)

	parts := []*Aggregate{}
	for i := 0; i < 3; i++ {
		a, err := NewAggregate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, a)
	}
	for i, v := range c.Verdicts {
		// Contiguous thirds: merge preserves in-order concatenation.
		parts[i*3/len(c.Verdicts)].Add(v)
	}
	merged, err := NewAggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	var rep, js bytes.Buffer
	if err := merged.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if rep.String() != wantRep || js.String() != wantJSON {
		t.Fatal("merged partition reports differ from whole-stream aggregation")
	}
	if err := merged.Merge(parts[0]); err != nil {
		t.Fatal(err)
	}
	other, _ := NewAggregate(CampaignConfig{Generator: "uniform"})
	if err := merged.Merge(other); err == nil {
		t.Fatal("merge across different campaigns accepted")
	}
}

// TestStreamCampaignCancellationYieldsIdentifiedTail cancels mid-stream
// and checks every remaining scenario still arrives, in order, with its
// identity and the context error.
func TestStreamCampaignCancellationYieldsIdentifiedTail(t *testing.T) {
	cfg := campaignCfg(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var all []Verdict
	cancelledAt := -1
	i := 0
	for v, serr := range StreamCampaign(ctx, cfg) {
		all = append(all, v)
		if serr != nil && cancelledAt == -1 {
			cancelledAt = i
		}
		if i == 4 {
			cancel()
		}
		i++
	}
	if len(all) != 60 {
		t.Fatalf("yielded %d of 60 scenarios", len(all))
	}
	if cancelledAt == -1 {
		t.Skip("campaign finished before cancellation propagated") // tiny machines
	}
	full, err := RunCampaign(context.Background(), campaignCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range all {
		if v.ID != full.Verdicts[j].ID {
			t.Fatalf("identity diverges at %d: %s vs %s", j, v.ID, full.Verdicts[j].ID)
		}
	}
	tail := all[cancelledAt]
	if tail.Err == "" || tail.Outcome != "error" {
		t.Fatalf("cancelled verdict not marked: %+v", tail)
	}
}

// TestRunCampaignEchoesResolvedConfig pins the Campaign echo fields the
// facade and CLI rely on.
func TestRunCampaignEchoesResolvedConfig(t *testing.T) {
	c, err := RunCampaign(context.Background(), CampaignConfig{Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Generator != "uniform" || !reflect.DeepEqual(c.Seeds, []uint64{1}) || c.Count != 2 {
		t.Fatalf("resolved echo wrong: %+v", c)
	}
	if c.Gen == (GenConfig{}) {
		t.Fatal("campaign did not echo the defaulted generator bounds")
	}
	if _, err := RunCampaign(context.Background(), CampaignConfig{Generator: "nope"}); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

// TestCheckpointSnapshotIsImmutable is the regression test for the
// mid-stream checkpointing bug: a checkpoint taken at cut N must stay
// internally consistent (and encodable) while the aggregate keeps
// folding verdicts past it.
func TestCheckpointSnapshotIsImmutable(t *testing.T) {
	cfg := campaignCfg(1)
	agg, err := NewAggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mid *Checkpoint
	n := 0
	for v, serr := range StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatal(serr)
		}
		agg.Add(v)
		if n++; n == 5 {
			mid = agg.Checkpoint()
		}
	}
	if mid.Done != 5 {
		t.Fatalf("mid-stream checkpoint Done=%d", mid.Done)
	}
	runs := 0
	for _, fs := range mid.Families {
		runs += fs.Runs
	}
	if runs != 5 {
		t.Fatalf("later Add mutated the checkpoint snapshot: family runs %d", runs)
	}
	data, err := mid.Encode()
	if err != nil {
		t.Fatalf("mid-stream checkpoint no longer encodes: %v", err)
	}
	if _, err := DecodeCheckpoint(data); err != nil {
		t.Fatal(err)
	}
}
