package scenario

import (
	"sync"

	"pef/internal/fsync"
	"pef/internal/harness"
	"pef/internal/telemetry"
)

// Telemetry is the campaign-level instrumentation bundle: one
// telemetry.Registry plus the pre-wired metric groups every layer of the
// stack records into — the harness pool, the fsync engines, the oracle,
// and the lockstep router. A nil *Telemetry disables everything (the
// accessors hand out nil instruments), and nothing recorded here is ever
// read back by the engine, so reports, checkpoints and goldens are
// byte-identical with telemetry on or off.
//
// Metric catalog (see SCENARIOS.md "Observability" for definitions):
//
//	pool.*                    scheduling (harness.PoolMetrics)
//	sim.rounds|acquires|releases          scalar engine
//	sim.lockstep.rounds|laneRounds|acquires|releases  lane engine
//	sim.wordFastLanes|wordFallbackLanes   E_t materialization paths
//	oracle.scalarRuns         scalar oracle executions
//	engine.lockstepSpecs|scalarSpecs      per-spec path routing
//	engine.lockstepGroups     lane groups launched
//	engine.laneOccupancy      lanes per group (packing efficiency)
//	engine.lockstepMillis     wall ms spent inside lane groups
//	engine.skip.<reason>      why specs left the lockstep path
//	family.<family>.millis    scalar-oracle wall ms per dynamics family
//	campaign.<generator>.millis  campaign wall ms per generator (CLI-recorded)
type Telemetry struct {
	reg  *telemetry.Registry
	pool *harness.PoolMetrics
	sim  *fsync.Metrics

	scalarRuns     *telemetry.Counter
	lockstepSpecs  *telemetry.Counter
	scalarSpecs    *telemetry.Counter
	lockstepGroups *telemetry.Counter
	lockstepMillis *telemetry.Counter
	laneOccupancy  *telemetry.Hist

	// mu guards the lazily-built per-name counter caches; lookups after
	// the first per name are one map read, no string concatenation.
	mu           sync.Mutex
	familyMillis map[string]*telemetry.Counter
	skipReasons  map[string]*telemetry.Counter
}

// NewTelemetry creates an instrumentation bundle backed by a fresh
// registry.
func NewTelemetry() *Telemetry {
	reg := telemetry.NewRegistry()
	return &Telemetry{
		reg:  reg,
		pool: harness.NewPoolMetrics(reg, "pool"),
		sim: &fsync.Metrics{
			Rounds:             reg.Counter("sim.rounds"),
			Acquires:           reg.Counter("sim.acquires"),
			Releases:           reg.Counter("sim.releases"),
			LockstepRounds:     reg.Counter("sim.lockstep.rounds"),
			LockstepLaneRounds: reg.Counter("sim.lockstep.laneRounds"),
			LockstepAcquires:   reg.Counter("sim.lockstep.acquires"),
			LockstepReleases:   reg.Counter("sim.lockstep.releases"),
			WordFastLanes:      reg.Counter("sim.wordFastLanes"),
			WordFallbackLanes:  reg.Counter("sim.wordFallbackLanes"),
		},
		scalarRuns:     reg.Counter("oracle.scalarRuns"),
		lockstepSpecs:  reg.Counter("engine.lockstepSpecs"),
		scalarSpecs:    reg.Counter("engine.scalarSpecs"),
		lockstepGroups: reg.Counter("engine.lockstepGroups"),
		lockstepMillis: reg.Counter("engine.lockstepMillis"),
		laneOccupancy:  reg.Hist("engine.laneOccupancy"),
		familyMillis:   map[string]*telemetry.Counter{},
		skipReasons:    map[string]*telemetry.Counter{},
	}
}

// Registry exposes the underlying instrument registry (for serving or
// custom instruments). Nil receiver: nil.
func (t *Telemetry) Registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Snapshot copies the current state of every instrument. Nil receiver:
// zero snapshot — safe to serve from an endpoint unconditionally.
func (t *Telemetry) Snapshot() telemetry.Snapshot {
	return t.Registry().Snapshot()
}

// poolMetrics returns the pool instrumentation group; nil-safe.
func (t *Telemetry) poolMetrics() *harness.PoolMetrics {
	if t == nil {
		return nil
	}
	return t.pool
}

// simMetrics returns the fsync instrumentation group; nil-safe.
func (t *Telemetry) simMetrics() *fsync.Metrics {
	if t == nil {
		return nil
	}
	return t.sim
}

// famMillis returns the per-family scalar-oracle wall-time counter,
// cached per family name; nil-safe.
func (t *Telemetry) famMillis(family string) *telemetry.Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.familyMillis[family]
	if !ok {
		c = t.reg.Counter("family." + family + ".millis")
		t.familyMillis[family] = c
	}
	return c
}

// skipReason returns the counter for one lockstep-ineligibility reason,
// cached per reason; nil-safe.
func (t *Telemetry) skipReason(reason string) *telemetry.Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.skipReasons[reason]
	if !ok {
		c = t.reg.Counter("engine.skip." + reason)
		t.skipReasons[reason] = c
	}
	return c
}
