package search

import (
	"math"

	"pef/internal/prng"
)

// ucbC is the UCB1 exploration constant (the classical sqrt(2)).
var ucbC = math.Sqrt2

// pickArm chooses the bandit arm for post-warmup explore slot (g, i):
// UCB1 over the per-mille reward means, with the generation's pending
// in-flight pulls (pend) counted into each arm's pull total so one
// generation's slots spread instead of dog-piling the current best arm.
// Ties — exact score equality, common right after warmup — break by a
// hash-keyed draw on the bandit stream, so the choice is deterministic
// but not positionally biased toward low arm indices.
func (sr *searcher) pickArm(g, i int, pend []int) int {
	total := 0
	for a := range sr.arms {
		total += sr.arms[a].Pulls + pend[a]
	}
	if total < 1 {
		total = 1
	}
	logTotal := math.Log(float64(total))
	best := math.Inf(-1)
	var ties []int
	for a := range sr.arms {
		n := sr.arms[a].Pulls + pend[a]
		var score float64
		if n == 0 {
			// Never-pulled arms are explored before any scored one.
			score = math.Inf(1)
		} else {
			// Mean reward over *folded* pulls (pending ones carry no
			// reward yet), scaled to [0, 1]; width over all attributed
			// pulls.
			mean := 0.0
			if sr.arms[a].Pulls > 0 {
				mean = float64(sr.arms[a].RewardMilli) / float64(sr.arms[a].Pulls) / 1000
			}
			score = mean + ucbC*math.Sqrt(logTotal/float64(n))
		}
		switch {
		case score > best:
			best = score
			ties = ties[:0]
			ties = append(ties, a)
		case score == best:
			ties = append(ties, a)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	u := prng.Hash3(sr.cfg.Seed, streamBandit, slotKey(g, i))
	return ties[int(u%uint64(len(ties)))]
}
