package search

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"pef/internal/metrics"
	"pef/internal/scenario"
)

// CheckpointVersion is the search checkpoint/report format version.
const CheckpointVersion = 1

// Checkpoint is the serialized state of a partially executed search: the
// resolved configuration plus the complete steering state (bandit arms,
// near-violation corpus, warmup distribution, concentration counters,
// boundary cells, violations). Because the loop folds generations
// single-threaded and every draw is hash-keyed by (generation, slot),
// resuming from a checkpoint and finishing the run reproduces the
// uninterrupted search's boundary report byte for byte.
type Checkpoint struct {
	// Version is the search format version the checkpoint was written
	// under.
	Version int `json:"version"`
	// Seed through Gen pin the resolved search identity; Resume adopts
	// them and rejects conflicting overrides. MutationShare and
	// MaxMinimize encode "resolved to zero" as -1 so re-resolution cannot
	// turn an explicit "none" back into the default.
	Seed           uint64             `json:"seed"`
	Generations    int                `json:"generations"`
	GenerationSize int                `json:"generationSize"`
	Warmup         int                `json:"warmup"`
	MutationShare  int                `json:"mutationShare"`
	CorpusSize     int                `json:"corpusSize"`
	MaxMinimize    int                `json:"maxMinimize"`
	Gen            scenario.GenConfig `json:"gen"`
	// Done is the number of completed generations; resuming continues at
	// generation Done.
	Done int `json:"done"`
	// Samples, Mutations and BanditPicks are the loop counters.
	Samples     int `json:"samples"`
	Mutations   int `json:"mutations,omitempty"`
	BanditPicks int `json:"banditPicks,omitempty"`
	// Arms is the bandit state, in family pool order.
	Arms []ArmState `json:"arms"`
	// Corpus is the near-violation corpus, sorted by ascending margin.
	Corpus []CorpusEntry `json:"corpus,omitempty"`
	// Warm is the warmup rel-margin distribution (canonical entry list)
	// and Threshold its frozen bottom quartile once warmup completed.
	Warm      []metrics.DistEntry `json:"warm,omitempty"`
	Threshold int                 `json:"threshold,omitempty"`
	// PostWarmup and Bottom are the concentration counters.
	PostWarmup int `json:"postWarmup,omitempty"`
	Bottom     int `json:"bottom,omitempty"`
	// Rows is the boundary state in first-observation order.
	Rows []BoundaryRow `json:"rows,omitempty"`
	// Violations and Minimized are the violation log and spent shrink
	// budget.
	Violations []Violation `json:"violations,omitempty"`
	Minimized  int         `json:"minimized,omitempty"`
	// Checksum is the hex SHA-256 of the checkpoint's content (the
	// indented JSON rendering with this field empty). Encode always
	// writes it; DecodeCheckpoint verifies it when present, so a
	// truncated or bit-flipped checkpoint fails loudly instead of
	// resuming a silently diverged search.
	Checksum string `json:"checksum,omitempty"`
}

// checkpoint snapshots the searcher. The snapshot deep-copies every
// slice, so later generations never mutate an already-taken checkpoint.
func (sr *searcher) checkpoint() *Checkpoint {
	ms := sr.cfg.MutationShare
	if ms == 0 {
		ms = -1
	}
	mm := sr.cfg.MaxMinimize
	if mm == 0 {
		mm = -1
	}
	return &Checkpoint{
		Version:        CheckpointVersion,
		Seed:           sr.cfg.Seed,
		Generations:    sr.cfg.Generations,
		GenerationSize: sr.cfg.GenerationSize,
		Warmup:         sr.cfg.Warmup,
		MutationShare:  ms,
		CorpusSize:     sr.cfg.CorpusSize,
		MaxMinimize:    mm,
		Gen:            sr.cfg.Gen,
		Done:           sr.gen,
		Samples:        sr.samples,
		Mutations:      sr.mutations,
		BanditPicks:    sr.banditPicks,
		Arms:           append([]ArmState(nil), sr.arms...),
		Corpus:         append([]CorpusEntry(nil), sr.corpus...),
		Warm:           sr.warm.Entries(),
		Threshold:      sr.threshold,
		PostWarmup:     sr.postWarmup,
		Bottom:         sr.bottom,
		Rows:           append([]BoundaryRow(nil), sr.rows...),
		Violations:     append([]Violation(nil), sr.viols...),
		Minimized:      sr.minimized,
	}
}

// restore folds a checkpoint into a fresh searcher whose configuration
// was already adopted from it (so the pool and arms are laid out).
func (sr *searcher) restore(c *Checkpoint) error {
	if len(c.Arms) != len(sr.arms) {
		return fmt.Errorf("search: checkpoint carries %d bandit arms for a pool of %d families (registry or filter changed since the checkpoint)",
			len(c.Arms), len(sr.arms))
	}
	for i, a := range c.Arms {
		if a.Family != sr.arms[i].Family {
			return fmt.Errorf("search: checkpoint arm %d is family %q, pool has %q (registry or filter changed since the checkpoint)",
				i, a.Family, sr.arms[i].Family)
		}
	}
	sr.arms = append(sr.arms[:0], c.Arms...)
	sr.gen = c.Done
	sr.samples = c.Samples
	sr.mutations = c.Mutations
	sr.banditPicks = c.BanditPicks
	sr.corpus = append([]CorpusEntry(nil), c.Corpus...)
	for _, e := range sr.corpus {
		sr.corpusIdx[e.Spec.ID()] = true
	}
	warm, err := metrics.DistFromEntries(c.Warm)
	if err != nil {
		return err
	}
	sr.warm = warm
	sr.threshold = c.Threshold
	sr.postWarmup = c.PostWarmup
	sr.bottom = c.Bottom
	sr.rows = append([]BoundaryRow(nil), c.Rows...)
	for i, r := range sr.rows {
		sr.rowIdx[r.Family+"\x00"+r.Metric] = i
	}
	sr.viols = append([]Violation(nil), c.Violations...)
	sr.minimized = c.Minimized
	return nil
}

// validate checks internal consistency so corrupt checkpoints fail
// before a resumed search silently diverges.
func (c *Checkpoint) validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("search: unsupported checkpoint version %d (want %d)", c.Version, CheckpointVersion)
	}
	if c.Generations < 1 || c.GenerationSize < 1 {
		return fmt.Errorf("search: checkpoint lacks run shape (generations=%d, size=%d)", c.Generations, c.GenerationSize)
	}
	if c.Warmup < 1 || c.Warmup > c.Generations {
		return fmt.Errorf("search: checkpoint warmup %d outside [1, %d]", c.Warmup, c.Generations)
	}
	if c.MutationShare < -1 || c.MutationShare == 0 || c.MutationShare > 100 {
		return fmt.Errorf("search: checkpoint mutation share %d outside {-1} ∪ [1, 100]", c.MutationShare)
	}
	if c.CorpusSize < 1 {
		return fmt.Errorf("search: checkpoint corpus bound %d below 1", c.CorpusSize)
	}
	if c.MaxMinimize < -1 || c.MaxMinimize == 0 {
		return fmt.Errorf("search: checkpoint minimize budget %d outside {-1} ∪ [1, ∞)", c.MaxMinimize)
	}
	if c.Done < 0 || c.Done > c.Generations {
		return fmt.Errorf("search: checkpoint Done=%d outside [0, %d]", c.Done, c.Generations)
	}
	if c.Samples != c.Done*c.GenerationSize {
		return fmt.Errorf("search: checkpoint carries %d samples for %d generations of %d (want %d)",
			c.Samples, c.Done, c.GenerationSize, c.Done*c.GenerationSize)
	}
	if c.Mutations < 0 || c.Mutations > c.Samples {
		return fmt.Errorf("search: checkpoint mutations %d outside [0, %d]", c.Mutations, c.Samples)
	}
	if len(c.Arms) == 0 {
		return fmt.Errorf("search: checkpoint has no bandit arms")
	}
	pulls := 0
	for i, a := range c.Arms {
		if a.Family == "" || a.Pulls < 0 || a.RewardMilli < 0 {
			return fmt.Errorf("search: checkpoint arm %d is malformed (%+v)", i, a)
		}
		pulls += a.Pulls
	}
	if pulls+c.Mutations != c.Samples {
		return fmt.Errorf("search: checkpoint arm pulls %d + mutations %d disagree with %d samples",
			pulls, c.Mutations, c.Samples)
	}
	if len(c.Corpus) > c.CorpusSize {
		return fmt.Errorf("search: checkpoint corpus of %d exceeds its bound %d", len(c.Corpus), c.CorpusSize)
	}
	for i := 1; i < len(c.Corpus); i++ {
		if c.Corpus[i].Rel < c.Corpus[i-1].Rel {
			return fmt.Errorf("search: checkpoint corpus is not sorted by margin at entry %d", i)
		}
	}
	if c.Bottom < 0 || c.Bottom > c.PostWarmup {
		return fmt.Errorf("search: checkpoint bottom-quartile count %d exceeds post-warmup count %d", c.Bottom, c.PostWarmup)
	}
	mini := 0
	for _, v := range c.Violations {
		if v.Minimized != nil {
			mini++
		}
	}
	if mini != c.Minimized {
		return fmt.Errorf("search: checkpoint minimized budget %d disagrees with %d shrunk violations", c.Minimized, mini)
	}
	return nil
}

// Encode renders the checkpoint as indented JSON with its content
// checksum filled in.
func (c *Checkpoint) Encode() ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	cp := *c
	sum, err := cp.contentChecksum()
	if err != nil {
		return nil, err
	}
	cp.Checksum = sum
	return json.MarshalIndent(&cp, "", "  ")
}

// contentChecksum hashes the checkpoint's content: the indented JSON
// rendering with the Checksum field cleared, so the stored hash covers
// every other byte of the file.
func (c *Checkpoint) contentChecksum() (string, error) {
	cp := *c
	cp.Checksum = ""
	body, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeCheckpoint parses and validates an encoded search checkpoint,
// verifying the content checksum when one is present.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("search: decode checkpoint: %w", err)
	}
	if c.Checksum != "" {
		want, err := c.contentChecksum()
		if err != nil {
			return nil, err
		}
		if c.Checksum != want {
			return nil, fmt.Errorf("search: checkpoint checksum mismatch (file is corrupt or truncated): stored %s, content %s",
				c.Checksum, want)
		}
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
