package search

import "sort"

// mergeCorpus folds one generation's surviving candidates into the
// bounded near-violation corpus: the CorpusSize lowest-margin surviving
// specs seen so far, deduplicated by canonical spec ID and held in a
// deterministic total order (ascending per-mille margin, then raw
// margin, then spec ID) so corpus[0] is always the tightest survivor and
// checkpointed corpora resume bit-exactly.
func (sr *searcher) mergeCorpus(cands []CorpusEntry) {
	if len(cands) == 0 {
		return
	}
	for _, c := range cands {
		id := c.Spec.ID()
		if sr.corpusIdx[id] {
			// A spec rerun is deterministic, so a duplicate ID carries the
			// same margins; keep the incumbent entry.
			continue
		}
		sr.corpusIdx[id] = true
		sr.corpus = append(sr.corpus, c)
	}
	ids := make([]string, len(sr.corpus))
	for i := range sr.corpus {
		ids[i] = sr.corpus[i].Spec.ID()
	}
	sort.Sort(&corpusOrder{entries: sr.corpus, ids: ids})
	if len(sr.corpus) > sr.cfg.CorpusSize {
		// Evicted specs may re-enter later if a mutation rediscovers them;
		// the index tracks membership, not history, so an uninterrupted
		// run and a checkpoint-resumed one (which only knows the surviving
		// corpus) make identical decisions.
		for _, e := range sr.corpus[sr.cfg.CorpusSize:] {
			delete(sr.corpusIdx, e.Spec.ID())
		}
		sr.corpus = sr.corpus[:sr.cfg.CorpusSize]
	}
}

// corpusOrder sorts corpus entries with their precomputed IDs in lockstep
// — a total order, since IDs are unique within the corpus.
type corpusOrder struct {
	entries []CorpusEntry
	ids     []string
}

func (o *corpusOrder) Len() int { return len(o.entries) }

func (o *corpusOrder) Less(i, j int) bool {
	a, b := o.entries[i], o.entries[j]
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	if a.Margin != b.Margin {
		return a.Margin < b.Margin
	}
	return o.ids[i] < o.ids[j]
}

func (o *corpusOrder) Swap(i, j int) {
	o.entries[i], o.entries[j] = o.entries[j], o.entries[i]
	o.ids[i], o.ids[j] = o.ids[j], o.ids[i]
}
