package search

import (
	"math"

	"pef/internal/prng"
	"pef/internal/scenario"
)

// mutate plans mutation slot (g, j): it picks a corpus parent on the
// mutation-pick stream — biased toward the tight end of the sorted
// corpus by drawing the minimum of two uniform indices — and walks it
// one step through the parameter space on the per-slot mutation stream.
// Operators: ring nudges, team nudges, declared-parameter jiggles within
// the family's registered ranges, and run reseeds. Every candidate
// re-derives its horizon under the family's own policy (so a mutation
// can never manufacture a vacuous violation by shrinking the run
// window), re-derives its expectation, and must pass full registry
// validation; after a bounded number of rejected attempts the slot falls
// back to a plain reseed of the parent, which is always valid.
func (sr *searcher) mutate(g, j int) scenario.Spec {
	h := prng.Hash3(sr.cfg.Seed, streamMutPick, slotKey(g, j))
	a := int(h % uint64(len(sr.corpus)))
	b := int((h >> 32) % uint64(len(sr.corpus)))
	parent := sr.corpus[min(a, b)].Spec
	src := prng.NewSource(prng.Hash3(sr.cfg.Seed, streamMutDraw, slotKey(g, j)))
	gcfg := sr.cfg.Gen.WithDefaults()
	for attempt := 0; attempt < 8; attempt++ {
		if s, ok := sr.mutateOnce(parent, src, gcfg); ok {
			return s
		}
	}
	s := parent
	s.Seed = src.Uint64()
	return s
}

// mutateOnce applies one operator draw to the parent, reporting whether
// the candidate survived validation.
func (sr *searcher) mutateOnce(parent scenario.Spec, src *prng.Source, gcfg scenario.GenConfig) (scenario.Spec, bool) {
	s := parent
	switch src.Intn(4) {
	case 0: // ring nudge: ±1..2 nodes within the sampler's bounds
		lo := gcfg.MinRing
		if lo < 4 {
			lo = 4
		}
		s.Ring = clampInt(s.Ring+src.Intn(5)-2, lo, gcfg.MaxRing)
		if s.Robots > s.Ring-1 {
			s.Robots = s.Ring - 1
		}
	case 1: // team nudge: ±1 robot within [3, min(MaxRobots, n-1)]
		hi := gcfg.MaxRobots
		if hi > s.Ring-1 {
			hi = s.Ring - 1
		}
		delta := 1
		if src.Bool(0.5) {
			delta = -1
		}
		s.Robots = clampInt(s.Robots+delta, 3, hi)
	case 2: // parameter jiggle within the family's declared range
		d, ok := sr.reg.Family(s.Family)
		if !ok || len(d.Params) == 0 {
			return s, false
		}
		f := d.Params[src.Intn(len(d.Params))]
		cur, ok := scenario.ParamValue(s.Params, f.Name)
		if !ok {
			return s, false
		}
		var next float64
		if f.Kind == scenario.ParamFloat {
			// Hundredth-quantized steps, like the samplers' probIn, so
			// spec IDs and JSON stay compact.
			step := float64(src.Intn(5)+1) / 100
			if src.Bool(0.5) {
				step = -step
			}
			next = math.Round((cur+step)*100) / 100
		} else {
			step := float64(src.Intn(3) + 1)
			if src.Bool(0.5) {
				step = -step
			}
			next = cur + step
		}
		if next < f.Min {
			next = f.Min
		}
		if !math.IsInf(f.Max, 1) && next > f.Max {
			next = f.Max
		}
		if !scenario.SetParamValue(&s.Params, f.Name, next) {
			return s, false
		}
	default: // reseed: same point, different run randomness
		s.Seed = src.Uint64()
	}
	if s != parent {
		// Structural mutations shift the run stream anyway; give every
		// changed candidate its own seed so a (ring, params) revisit still
		// explores new executions.
		s.Seed = src.Uint64()
	}
	h, err := sr.reg.HorizonFor(s.Family, s.Ring, s.Params)
	if err != nil {
		return s, false
	}
	s.Horizon = h
	exp, err := sr.reg.Expectation(s)
	if err != nil {
		return s, false
	}
	s.Expect = exp
	if err := sr.reg.ValidateSpec(s); err != nil {
		return s, false
	}
	return s, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
