package search

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pef/internal/metrics"
)

// ReportKind tags the boundary-report JSON document so pefbenchdiff can
// tell it apart from bench jobs and campaign documents.
const ReportKind = "searchBoundary"

// Result is the final state of a search run.
type Result struct {
	// Seed and Generations identify the run (Generations counts the
	// *completed* ones — fewer than configured when halted).
	Seed        uint64
	Generations int
	// Halted reports a clean OnGeneration halt (ErrHalted).
	Halted bool
	// Samples, Mutations and BanditPicks summarize how the budget was
	// spent.
	Samples, Mutations, BanditPicks int
	// Threshold is the frozen warmup bottom-quartile rel margin;
	// PostWarmup and Bottom are the concentration counters measured
	// against it.
	Threshold          int
	PostWarmup, Bottom int
	// Arms is the final bandit state, Corpus the near-violation corpus
	// (ascending margin), Boundary the tightest-margin cells, Violations
	// the found violations with their minimized reproducers.
	Arms       []ArmState
	Corpus     []CorpusEntry
	Boundary   []BoundaryRow
	Violations []Violation
}

// result snapshots the searcher into its public Result, with boundary
// rows in canonical (family, metric) order.
func (sr *searcher) result() *Result {
	rows := append([]BoundaryRow(nil), sr.rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Family != rows[j].Family {
			return rows[i].Family < rows[j].Family
		}
		return rows[i].Metric < rows[j].Metric
	})
	return &Result{
		Seed:        sr.cfg.Seed,
		Generations: sr.gen,
		Halted:      sr.halted,
		Samples:     sr.samples,
		Mutations:   sr.mutations,
		BanditPicks: sr.banditPicks,
		Threshold:   sr.threshold,
		PostWarmup:  sr.postWarmup,
		Bottom:      sr.bottom,
		Arms:        append([]ArmState(nil), sr.arms...),
		Corpus:      append([]CorpusEntry(nil), sr.corpus...),
		Boundary:    rows,
		Violations:  append([]Violation(nil), sr.viols...),
	}
}

// BoundaryReport is the versioned boundary-report document: the tightest
// observed margin per family × metric plus the run's steering summary.
// It is what pefbenchdiff's search mode diffs run over run.
type BoundaryReport struct {
	Kind        string        `json:"kind"`
	Version     int           `json:"version"`
	Seed        uint64        `json:"seed"`
	Generations int           `json:"generations"`
	Samples     int           `json:"samples"`
	Mutations   int           `json:"mutations,omitempty"`
	Halted      bool          `json:"halted,omitempty"`
	Threshold   int           `json:"threshold,omitempty"`
	PostWarmup  int           `json:"postWarmup,omitempty"`
	Bottom      int           `json:"bottom,omitempty"`
	Rows        []BoundaryRow `json:"rows"`
	Violations  []Violation   `json:"violations,omitempty"`
}

// Report builds the result's boundary-report document.
func (r *Result) Report() BoundaryReport {
	return BoundaryReport{
		Kind:        ReportKind,
		Version:     CheckpointVersion,
		Seed:        r.Seed,
		Generations: r.Generations,
		Samples:     r.Samples,
		Mutations:   r.Mutations,
		Halted:      r.Halted,
		Threshold:   r.Threshold,
		PostWarmup:  r.PostWarmup,
		Bottom:      r.Bottom,
		Rows:        r.Boundary,
		Violations:  r.Violations,
	}
}

// WriteJSON writes the boundary-report document as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Report(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeReport parses a boundary-report document, rejecting documents of
// another kind.
func DecodeReport(data []byte) (*BoundaryReport, error) {
	var r BoundaryReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("search: decode boundary report: %w", err)
	}
	if r.Kind != ReportKind {
		return nil, fmt.Errorf("search: document kind %q is not a boundary report (%q)", r.Kind, ReportKind)
	}
	return &r, nil
}

// WriteReport writes the human-readable boundary report: the run
// summary, the tightest-margin table, the bandit's budget allocation,
// and each violation with its minimized reproducer.
func (r *Result) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "search: seed %d, %d generations, %d samples (%d mutated)\n",
		r.Seed, r.Generations, r.Samples, r.Mutations); err != nil {
		return err
	}
	if r.PostWarmup > 0 {
		if _, err := fmt.Fprintf(w, "concentration: %d/%d post-warmup samples at or below the warmup bottom-quartile margin (%d‰)\n",
			r.Bottom, r.PostWarmup, r.Threshold); err != nil {
			return err
		}
	}
	if r.Halted {
		if _, err := fmt.Fprintln(w, "halted: run stopped cleanly before its configured generations"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nboundary (tightest observed margin per family × metric):\n"); err != nil {
		return err
	}
	bt := metrics.NewTable("family", "metric", "min", "rel(‰)", "samples", "tightest spec")
	for _, row := range r.Boundary {
		bt.AddRow(row.Family, row.Metric, row.Min, row.RelMin, row.Count, row.SpecID)
	}
	if err := bt.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nbandit arms:\n"); err != nil {
		return err
	}
	at := metrics.NewTable("family", "pulls", "reward(‰)")
	for _, a := range r.Arms {
		mean := int64(0)
		if a.Pulls > 0 {
			mean = a.RewardMilli / int64(a.Pulls)
		}
		at.AddRow(a.Family, a.Pulls, mean)
	}
	if err := at.Render(w); err != nil {
		return err
	}
	if len(r.Violations) == 0 {
		_, err := fmt.Fprintf(w, "\nviolations: none (corpus holds %d near-violation specs)\n", len(r.Corpus))
		return err
	}
	if _, err := fmt.Fprintf(w, "\nviolations: %d\n", len(r.Violations)); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "  %s\n", v.ID); err != nil {
			return err
		}
		switch {
		case v.Err != "":
			if _, err := fmt.Fprintf(w, "    error: %s\n", v.Err); err != nil {
				return err
			}
		case v.Violation != "":
			if _, err := fmt.Fprintf(w, "    %s\n", v.Violation); err != nil {
				return err
			}
		}
		if v.Minimized != nil {
			if _, err := fmt.Fprintf(w, "    minimal reproducer: %s\n", v.MinimizedID); err != nil {
				return err
			}
			if enc, err := v.Minimized.Encode(); err == nil {
				if _, err := fmt.Fprintf(w, "    %s\n", enc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
