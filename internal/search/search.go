// Package search implements coverage-guided scenario search: generational
// campaigns that spend their budget where the paper's predicate bounds
// are tightest instead of sampling the parameter space blindly.
//
// Each generation runs one block of specs through the campaign engine
// (scenario.StreamSpecs — the same worker pool, lockstep lane packing and
// cache path campaigns use) and reads back the per-verdict predicate
// margins (scenario.Margins). Two steering mechanisms spend the next
// generation's budget:
//
//   - a seeded UCB bandit over the registered explorable-family pool,
//     rewarded by margin tightness, chooses which families to sample;
//   - parameter-space mutation of a near-violation corpus — the
//     lowest-margin surviving specs seen so far — walks specs toward the
//     theorem boundary (ring/team nudges, parameter jiggles, reseeds).
//
// Violations are auto-shrunk through the scenario minimizer and reported
// as minimal reproducers; the run ends with a boundary report (tightest
// observed margin per family × metric) that pefbenchdiff diffs across
// runs. Every random draw comes from prng.Hash3 keyed by (seed,
// generation, slot) — no wall clocks, no global state — and planning,
// folding and reporting are single-threaded, so a fixed-seed search is
// byte-identical for any worker count and lane width.
package search

import (
	"context"
	"errors"
	"fmt"

	"pef/internal/metrics"
	"pef/internal/prng"
	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// Hash3 stream tags: every deterministic draw of the search loop lives on
// its own stream so adding a draw never shifts another's sequence.
const (
	streamWarm    uint64 = 0x5EA4C401 // warmup family pick
	streamBandit  uint64 = 0x5EA4C402 // post-warmup arm pick
	streamSample  uint64 = 0x5EA4C403 // per-slot spec sampling source
	streamMutPick uint64 = 0x5EA4C404 // mutation parent/operator pick
	streamMutDraw uint64 = 0x5EA4C405 // per-slot mutation source
)

// slotKey packs a (generation, slot) pair into one Hash3 position.
func slotKey(g, i int) uint64 { return uint64(g)<<32 | uint64(uint32(i)) }

// ErrHalted is the sentinel an OnGeneration hook returns to stop the
// search cleanly after the current generation: Run returns the state so
// far with Result.Halted set, ready to be checkpointed and resumed.
var ErrHalted = errors.New("search: halted")

// Config parameterizes a search run. The zero value searches the default
// registry's explorable pool with the default budget.
type Config struct {
	// Registry resolves families and runs specs; nil means the process
	// default.
	Registry *scenario.Registry
	// Seed keys every deterministic draw of the run. Equal (registry,
	// config) runs are byte-identical, for any worker count.
	Seed uint64
	// Generations is the number of generations to run; values < 1 mean 8.
	Generations int
	// GenerationSize is the number of specs per generation; values < 1
	// mean 256.
	GenerationSize int
	// Warmup is the number of leading generations sampled uniformly over
	// the pool (no steering): they initialize the bandit arms and fix the
	// bottom-quartile margin threshold the concentration gate measures
	// against. Values < 1 mean min(2, Generations).
	Warmup int
	// MutationShare is the percentage of each post-warmup generation
	// spent mutating the near-violation corpus (the rest goes to the
	// bandit). 0 means 50; negative means no mutations.
	MutationShare int
	// CorpusSize bounds the near-violation corpus: the CorpusSize
	// lowest-margin surviving specs seen so far. Values < 1 mean 64.
	CorpusSize int
	// MaxMinimize bounds how many violations the run shrinks through the
	// scenario minimizer (each shrink replays the spec many times). 0
	// means 4; negative means none.
	MaxMinimize int
	// Gen bounds the sampled parameter space and selects the family pool
	// (Families filter or FamilyWeights), exactly like the "registered"
	// generator.
	Gen scenario.GenConfig
	// Workers, LaneWidth and DisableLockstep configure the engine like
	// CampaignConfig; none of them affects output bytes.
	Workers         int
	LaneWidth       int
	DisableLockstep bool
	// Telemetry, when non-nil, instruments the run: the engine stack as
	// usual plus the search.* instruments (generations, samples,
	// mutations, corpus size, margin distribution, concentration
	// counters). Purely observational.
	Telemetry *scenario.Telemetry
	// Trace, when non-nil, receives search lifecycle events
	// (search-start, generation, violation-found, search-end) —
	// deterministic fields only, byte-identical for any worker count and
	// lane width. The engine's own block events are deliberately not
	// forwarded: block boundaries depend on the lane width, and the
	// search trace must not.
	Trace *telemetry.Tracer
	// Resume, when non-nil, continues a checkpointed search: the config
	// identity is adopted from the checkpoint (conflicting non-zero
	// overrides are rejected; Generations may be raised to extend the
	// run) and the completed generations are skipped. A halted-and-
	// resumed run's boundary report is byte-identical to the
	// uninterrupted run's.
	Resume *Checkpoint
	// OnGeneration, when non-nil, runs after every completed generation
	// (checkpoint writing, progress display). Returning ErrHalted stops
	// the search cleanly; any other error aborts it.
	OnGeneration func(Progress) error
}

// resolved fills defaults and adopts a Resume checkpoint's identity,
// rejecting conflicting explicit overrides.
func (cfg Config) resolved() (Config, error) {
	if ck := cfg.Resume; ck != nil {
		if err := ck.validate(); err != nil {
			return cfg, err
		}
		if cfg.Seed != 0 && cfg.Seed != ck.Seed {
			return cfg, fmt.Errorf("search: resume seed %d conflicts with checkpoint %d", cfg.Seed, ck.Seed)
		}
		if cfg.Generations > 0 && cfg.Generations < ck.Done {
			return cfg, fmt.Errorf("search: resume generations %d below the checkpoint's %d completed", cfg.Generations, ck.Done)
		}
		if cfg.GenerationSize > 0 && cfg.GenerationSize != ck.GenerationSize {
			return cfg, fmt.Errorf("search: resume generation size %d conflicts with checkpoint %d", cfg.GenerationSize, ck.GenerationSize)
		}
		if cfg.Warmup > 0 && cfg.Warmup != ck.Warmup {
			return cfg, fmt.Errorf("search: resume warmup %d conflicts with checkpoint %d", cfg.Warmup, ck.Warmup)
		}
		if cfg.MutationShare != 0 && cfg.MutationShare != ck.MutationShare {
			return cfg, fmt.Errorf("search: resume mutation share %d conflicts with checkpoint %d", cfg.MutationShare, ck.MutationShare)
		}
		if cfg.CorpusSize > 0 && cfg.CorpusSize != ck.CorpusSize {
			return cfg, fmt.Errorf("search: resume corpus size %d conflicts with checkpoint %d", cfg.CorpusSize, ck.CorpusSize)
		}
		if cfg.MaxMinimize != 0 && cfg.MaxMinimize != ck.MaxMinimize {
			return cfg, fmt.Errorf("search: resume minimize budget %d conflicts with checkpoint %d", cfg.MaxMinimize, ck.MaxMinimize)
		}
		if cfg.Gen != (scenario.GenConfig{}) && cfg.Gen != ck.Gen {
			return cfg, fmt.Errorf("search: resume generator bounds %+v conflict with checkpoint %+v", cfg.Gen, ck.Gen)
		}
		cfg.Seed = ck.Seed
		if cfg.Generations == 0 {
			cfg.Generations = ck.Generations
		}
		cfg.GenerationSize = ck.GenerationSize
		cfg.Warmup = ck.Warmup
		cfg.MutationShare = ck.MutationShare
		cfg.CorpusSize = ck.CorpusSize
		cfg.MaxMinimize = ck.MaxMinimize
		cfg.Gen = ck.Gen
	}
	if cfg.Generations < 1 {
		cfg.Generations = 8
	}
	if cfg.GenerationSize < 1 {
		cfg.GenerationSize = 256
	}
	if cfg.Warmup < 1 {
		cfg.Warmup = 2
		if cfg.Generations < 2 {
			cfg.Warmup = cfg.Generations
		}
	}
	if cfg.Warmup > cfg.Generations {
		return cfg, fmt.Errorf("search: warmup %d exceeds generations %d", cfg.Warmup, cfg.Generations)
	}
	switch {
	case cfg.MutationShare == 0:
		cfg.MutationShare = 50
	case cfg.MutationShare < 0:
		cfg.MutationShare = 0
	}
	if cfg.MutationShare > 100 {
		return cfg, fmt.Errorf("search: mutation share %d%% above 100", cfg.MutationShare)
	}
	if cfg.CorpusSize < 1 {
		cfg.CorpusSize = 64
	}
	switch {
	case cfg.MaxMinimize == 0:
		cfg.MaxMinimize = 4
	case cfg.MaxMinimize < 0:
		cfg.MaxMinimize = 0
	}
	return cfg, nil
}

// registry resolves the effective registry.
func (cfg Config) registry() *scenario.Registry {
	if cfg.Registry != nil {
		return cfg.Registry
	}
	return scenario.DefaultRegistry()
}

// Progress is the per-generation callback payload.
type Progress struct {
	// Generation counts completed generations; Generations is the target.
	Generation, Generations int
	// Samples, CorpusSize and Violations summarize the state so far.
	Samples, CorpusSize, Violations int

	checkpoint func() *Checkpoint
}

// Checkpoint snapshots the search state after this generation; the
// snapshot resumes into a run byte-identical to the uninterrupted one.
func (p Progress) Checkpoint() *Checkpoint { return p.checkpoint() }

// ArmState is one bandit arm's accumulated statistics.
type ArmState struct {
	// Family is the explorable family the arm samples.
	Family string `json:"family"`
	// Pulls counts specs attributed to the arm (warmup and steered).
	Pulls int `json:"pulls"`
	// RewardMilli is the per-mille reward sum: 1000−rel for surviving
	// margins (tight margins reward high), 1000 for predicate violations,
	// 0 for errored runs.
	RewardMilli int64 `json:"rewardMilli"`
}

// CorpusEntry is one near-violation corpus member: a surviving spec with
// the margins that earned it a slot.
type CorpusEntry struct {
	// Spec is the surviving scenario, canonical JSON in checkpoints.
	Spec scenario.Spec `json:"spec"`
	// Margin and Metric identify the tightest margin the run had (raw
	// value in the metric's unit).
	Margin int    `json:"margin"`
	Metric string `json:"metric"`
	// Rel is the tightest margin normalized to per-mille — the corpus
	// ranking key.
	Rel int `json:"rel"`
}

// BoundaryRow is one cell of the boundary report: the tightest margin
// ever observed for a (family, metric) pair.
type BoundaryRow struct {
	Family string `json:"family"`
	Metric string `json:"metric"`
	// Min is the smallest raw margin observed; RelMin the smallest
	// per-mille one (they may come from different specs).
	Min    int `json:"min"`
	RelMin int `json:"relMin"`
	// Count is how many margins were folded into the cell.
	Count int `json:"count"`
	// SpecID identifies the first spec that achieved Min.
	SpecID string `json:"specId"`
}

// Violation is one predicate violation the search found, with its
// minimized reproducer when the shrink budget allowed one.
type Violation struct {
	ID        string        `json:"id"`
	Spec      scenario.Spec `json:"spec"`
	Outcome   string        `json:"outcome,omitempty"`
	Violation string        `json:"violation,omitempty"`
	Err       string        `json:"error,omitempty"`
	// Minimized is the scenario.Minimize-shrunk reproducer (nil when the
	// violation was an execution error or the shrink budget was spent).
	Minimized   *scenario.Spec `json:"minimized,omitempty"`
	MinimizedID string         `json:"minimizedId,omitempty"`
}

// searcher is the full mutable search state; everything in it is
// integer-valued and single-threaded, which is what makes checkpoints
// exact and runs byte-identical across engine configurations.
type searcher struct {
	cfg     Config // resolved
	reg     *scenario.Registry
	pool    []string
	weights []int
	arms    []ArmState

	gen         int // completed generations
	samples     int
	mutations   int
	banditPicks int

	corpus    []CorpusEntry
	corpusIdx map[string]bool

	warm       *metrics.Dist // warmup rel-margin distribution
	threshold  int           // bottom-quartile rel margin, valid once gen >= Warmup
	postWarmup int           // post-warmup samples carrying margins
	bottom     int           // ... of those at or below threshold

	rows   []BoundaryRow
	rowIdx map[string]int

	viols     []Violation
	minimized int

	halted bool
	ins    instruments
}

// planned pairs a generation slot's spec with its attribution: the bandit
// arm that chose the family, or -1 for corpus mutations.
type planned struct {
	spec scenario.Spec
	arm  int
}

// newSearcher resolves the config, derives the family pool and restores
// checkpoint state.
func newSearcher(cfg Config) (*searcher, error) {
	rcfg, err := cfg.resolved()
	if err != nil {
		return nil, err
	}
	reg := rcfg.registry()
	pool, weights, err := reg.ExplorableFamilies(rcfg.Gen)
	if err != nil {
		return nil, err
	}
	sr := &searcher{
		cfg:       rcfg,
		reg:       reg,
		pool:      pool,
		weights:   weights,
		arms:      make([]ArmState, len(pool)),
		corpusIdx: map[string]bool{},
		warm:      metrics.NewDist(),
		rowIdx:    map[string]int{},
		ins:       newInstruments(rcfg.Telemetry),
	}
	for i, f := range pool {
		sr.arms[i].Family = f
	}
	if ck := rcfg.Resume; ck != nil {
		if err := sr.restore(ck); err != nil {
			return nil, err
		}
	}
	if sr.gen >= sr.cfg.Warmup {
		sr.threshold = quantile25(sr.warm)
	}
	return sr, nil
}

// quantile25 returns the 25th-percentile value of the distribution (floor
// index over the sorted multiset), 0 when empty.
func quantile25(d *metrics.Dist) int {
	vs := d.Values()
	if len(vs) == 0 {
		return 0
	}
	return vs[(len(vs)-1)/4]
}

// Run executes the search to completion (or a clean halt) and returns
// the final state. See the package comment for the loop structure.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	sr, err := newSearcher(cfg)
	if err != nil {
		return nil, err
	}
	sr.cfg.Trace.Emit("search-start", map[string]any{
		"seed":           sr.cfg.Seed,
		"generations":    sr.cfg.Generations,
		"generationSize": sr.cfg.GenerationSize,
		"warmup":         sr.cfg.Warmup,
		"mutationShare":  sr.cfg.MutationShare,
		"pool":           len(sr.pool),
		"resumedFrom":    sr.gen,
	})
	for g := sr.gen; g < sr.cfg.Generations; g++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sr.runGeneration(ctx, g); err != nil {
			return nil, err
		}
		if sr.gen == sr.cfg.Warmup {
			// Warmup complete: freeze the bottom-quartile threshold the
			// concentration accounting measures steering against.
			sr.threshold = quantile25(sr.warm)
		}
		sr.emitGeneration(g)
		if sr.cfg.OnGeneration != nil {
			err := sr.cfg.OnGeneration(Progress{
				Generation:  sr.gen,
				Generations: sr.cfg.Generations,
				Samples:     sr.samples,
				CorpusSize:  len(sr.corpus),
				Violations:  len(sr.viols),
				checkpoint:  sr.checkpoint,
			})
			if errors.Is(err, ErrHalted) {
				sr.halted = true
				break
			}
			if err != nil {
				return nil, err
			}
		}
	}
	sr.cfg.Trace.Emit("search-end", map[string]any{
		"generations": sr.gen,
		"samples":     sr.samples,
		"violations":  len(sr.viols),
		"halted":      sr.halted,
	})
	return sr.result(), nil
}

// runGeneration plans, executes and folds one generation.
func (sr *searcher) runGeneration(ctx context.Context, g int) error {
	plans, err := sr.plan(g)
	if err != nil {
		return err
	}
	specs := make([]scenario.Spec, len(plans))
	for i := range plans {
		specs[i] = plans[i].spec
	}
	var cands []CorpusEntry
	i := 0
	for v, err := range scenario.StreamSpecs(ctx, scenario.CampaignConfig{
		Registry:        sr.reg,
		Workers:         sr.cfg.Workers,
		LaneWidth:       sr.cfg.LaneWidth,
		DisableLockstep: sr.cfg.DisableLockstep,
		Telemetry:       sr.cfg.Telemetry,
	}, specs) {
		if err != nil {
			// Cancellation mid-generation: the partial fold is discarded
			// (generations are the checkpoint grain), the caller resumes
			// from the last completed one.
			return err
		}
		sr.fold(g, plans[i], v, &cands)
		i++
	}
	sr.mergeCorpus(cands)
	sr.gen = g + 1
	sr.ins.generations.Inc()
	sr.ins.corpusSize.Set(int64(len(sr.corpus)))
	return nil
}

// plan lays out one generation: uniform pool draws during warmup, then a
// bandit-steered explore share plus a corpus-mutation share. Slot order
// is canonical (explore slots, then mutation slots) — the fold pairs
// verdicts back to plans positionally.
func (sr *searcher) plan(g int) ([]planned, error) {
	size := sr.cfg.GenerationSize
	mut := 0
	if g >= sr.cfg.Warmup && len(sr.corpus) > 0 {
		mut = size * sr.cfg.MutationShare / 100
	}
	explore := size - mut
	plans := make([]planned, 0, size)
	pend := make([]int, len(sr.arms))
	for i := 0; i < explore; i++ {
		var arm int
		if g < sr.cfg.Warmup {
			arm = sr.warmArm(g, i)
		} else {
			arm = sr.pickArm(g, i, pend)
			sr.banditPicks++
			sr.ins.banditPicks.Inc()
		}
		pend[arm]++
		src := prng.NewSource(prng.Hash3(sr.cfg.Seed, streamSample, slotKey(g, i)))
		s, err := sr.reg.SampleFamilySpec(sr.cfg.Gen, sr.pool[arm], src)
		if err != nil {
			return nil, err
		}
		plans = append(plans, planned{spec: s, arm: arm})
	}
	for j := 0; j < mut; j++ {
		plans = append(plans, planned{spec: sr.mutate(g, j), arm: -1})
		sr.mutations++
		sr.ins.mutations.Inc()
	}
	return plans, nil
}

// warmArm draws a warmup family uniformly over the pool (respecting
// FamilyWeights when configured), hash-keyed so the pick is independent
// of every other stream.
func (sr *searcher) warmArm(g, i int) int {
	u := prng.Hash3(sr.cfg.Seed, streamWarm, slotKey(g, i))
	if sr.weights == nil {
		return int(u % uint64(len(sr.pool)))
	}
	t := 0
	for _, w := range sr.weights {
		t += w
	}
	x := int(u % uint64(t))
	for a, w := range sr.weights {
		x -= w
		if x < 0 {
			return a
		}
	}
	return len(sr.pool) - 1
}

// fold accounts one verdict: boundary cells, bandit reward, concentration
// counters or the warmup distribution, corpus candidacy, violations.
func (sr *searcher) fold(g int, p planned, v scenario.Verdict, cands *[]CorpusEntry) {
	sr.samples++
	sr.ins.samples.Inc()
	margins := sr.reg.Margins(v)
	violated := !v.OK || v.Err != ""
	for _, m := range margins {
		sr.observeBoundary(v.Spec.Family, m, v.ID)
	}
	if p.arm >= 0 {
		sr.arms[p.arm].Pulls++
		sr.arms[p.arm].RewardMilli += int64(reward(margins, v))
	}
	if len(margins) > 0 {
		rel, raw, metric := worstMargin(margins)
		sr.ins.relMargin.Observe(rel)
		if g < sr.cfg.Warmup {
			sr.warm.Add(rel)
		} else {
			sr.postWarmup++
			sr.ins.postWarmup.Inc()
			if rel <= sr.threshold {
				sr.bottom++
				sr.ins.bottomQuartile.Inc()
			}
		}
		if !violated {
			*cands = append(*cands, CorpusEntry{Spec: v.Spec, Margin: raw, Metric: metric, Rel: rel})
		}
	}
	if violated {
		sr.recordViolation(v)
	}
}

// worstMargin returns the tightest margin of a non-empty margin list: the
// minimum per-mille value with its raw value and metric.
func worstMargin(ms []scenario.Margin) (rel, raw int, metric string) {
	rel, raw, metric = ms[0].Rel, ms[0].Value, ms[0].Metric
	for _, m := range ms[1:] {
		if m.Rel < rel {
			rel, raw, metric = m.Rel, m.Value, m.Metric
		}
	}
	return rel, raw, metric
}

// reward scores one verdict for the bandit, in per-mille: tight surviving
// margins reward high (1000−rel), predicate violations max out at 1000,
// execution errors carry no signal.
func reward(ms []scenario.Margin, v scenario.Verdict) int {
	if v.Err != "" {
		return 0
	}
	if !v.OK {
		return 1000
	}
	if len(ms) == 0 {
		return 0
	}
	rel, _, _ := worstMargin(ms)
	if rel < 0 {
		rel = 0
	}
	if rel > 1000 {
		rel = 1000
	}
	return 1000 - rel
}

// observeBoundary folds one margin into its (family, metric) boundary
// cell.
func (sr *searcher) observeBoundary(family string, m scenario.Margin, specID string) {
	key := family + "\x00" + m.Metric
	i, ok := sr.rowIdx[key]
	if !ok {
		i = len(sr.rows)
		sr.rowIdx[key] = i
		sr.rows = append(sr.rows, BoundaryRow{
			Family: family, Metric: m.Metric,
			Min: m.Value, RelMin: m.Rel, SpecID: specID,
		})
		sr.rows[i].Count = 1
		return
	}
	r := &sr.rows[i]
	r.Count++
	if m.Value < r.Min {
		r.Min = m.Value
		r.SpecID = specID
	}
	if m.Rel < r.RelMin {
		r.RelMin = m.Rel
	}
}

// recordViolation stores a violation, shrinking it into a minimal
// reproducer while the minimize budget lasts.
func (sr *searcher) recordViolation(v scenario.Verdict) {
	viol := Violation{ID: v.ID, Spec: v.Spec, Outcome: v.Outcome, Violation: v.Violation, Err: v.Err}
	if v.Err == "" && sr.minimized < sr.cfg.MaxMinimize {
		m := sr.reg.Minimize(v.Spec)
		viol.Minimized = &m
		viol.MinimizedID = m.ID()
		sr.minimized++
		sr.ins.minimized.Inc()
	}
	sr.viols = append(sr.viols, viol)
	sr.ins.violations.Inc()
	sr.cfg.Trace.Emit("violation-found", map[string]any{
		"id":        v.ID,
		"minimized": viol.MinimizedID,
	})
}

// emitGeneration traces one completed generation's deterministic summary
// — the margin-percentile trajectory rides these events.
func (sr *searcher) emitGeneration(g int) {
	tight := 0
	if len(sr.corpus) > 0 {
		tight = sr.corpus[0].Rel
	}
	sr.cfg.Trace.Emit("generation", map[string]any{
		"gen":        g,
		"samples":    sr.samples,
		"mutations":  sr.mutations,
		"corpus":     len(sr.corpus),
		"tightest":   tight,
		"threshold":  sr.threshold,
		"postWarmup": sr.postWarmup,
		"bottom":     sr.bottom,
		"violations": len(sr.viols),
	})
}

// instruments bundles the search.* telemetry; all fields are nil-safe
// no-ops without a telemetry registry.
type instruments struct {
	generations    *telemetry.Counter
	samples        *telemetry.Counter
	mutations      *telemetry.Counter
	banditPicks    *telemetry.Counter
	violations     *telemetry.Counter
	minimized      *telemetry.Counter
	postWarmup     *telemetry.Counter
	bottomQuartile *telemetry.Counter
	corpusSize     *telemetry.Gauge
	relMargin      *telemetry.Hist
}

func newInstruments(t *scenario.Telemetry) instruments {
	reg := t.Registry()
	return instruments{
		generations:    reg.Counter("search.generations"),
		samples:        reg.Counter("search.samples"),
		mutations:      reg.Counter("search.mutations"),
		banditPicks:    reg.Counter("search.banditPicks"),
		violations:     reg.Counter("search.violations"),
		minimized:      reg.Counter("search.minimized"),
		postWarmup:     reg.Counter("search.postWarmup"),
		bottomQuartile: reg.Counter("search.bottomQuartile"),
		corpusSize:     reg.Gauge("search.corpusSize"),
		relMargin:      reg.Hist("search.relMargin"),
	}
}
