package search

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// testConfig is a small but representative run: enough generations past
// warmup for the bandit and the mutator to matter, small enough to keep
// the suite fast.
func testConfig() Config {
	return Config{Seed: 11, Generations: 5, GenerationSize: 32, Warmup: 2, CorpusSize: 16}
}

// runToBytes executes a search and renders its boundary report and trace
// to bytes.
func runToBytes(t *testing.T, cfg Config) (report, trace []byte) {
	t.Helper()
	var tr bytes.Buffer
	cfg.Trace = telemetry.NewTracer(&tr)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Err(); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	if err := res.WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), tr.Bytes()
}

// A fixed-seed search must produce byte-identical boundary reports and
// trace event streams for any worker count and lane width, with the
// lockstep engine on or off.
func TestSearchDeterminism(t *testing.T) {
	base := testConfig()
	base.Workers = 1
	wantReport, wantTrace := runToBytes(t, base)
	if !bytes.Contains(wantTrace, []byte(`"event":"search-end"`)) {
		t.Fatalf("trace lacks search-end:\n%s", wantTrace)
	}
	variants := []Config{
		{Workers: 4},
		{Workers: 7, LaneWidth: 8},
		{Workers: 2, DisableLockstep: true},
	}
	for _, v := range variants {
		cfg := testConfig()
		cfg.Workers, cfg.LaneWidth, cfg.DisableLockstep = v.Workers, v.LaneWidth, v.DisableLockstep
		report, trace := runToBytes(t, cfg)
		if !bytes.Equal(report, wantReport) {
			t.Errorf("boundary report diverges at workers=%d lanewidth=%d lockstep=%v",
				v.Workers, v.LaneWidth, !v.DisableLockstep)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("trace diverges at workers=%d lanewidth=%d lockstep=%v",
				v.Workers, v.LaneWidth, !v.DisableLockstep)
		}
	}
}

// A different seed must actually change the run — determinism that falls
// out of ignoring the seed would pass the byte-identity test vacuously.
func TestSearchSeedMatters(t *testing.T) {
	a, _ := runToBytes(t, testConfig())
	cfg := testConfig()
	cfg.Seed = 12
	b, _ := runToBytes(t, cfg)
	if bytes.Equal(a, b) {
		t.Fatal("seeds 11 and 12 produced identical boundary reports")
	}
}

// Halting after each possible generation and resuming from the
// checkpoint must reproduce the uninterrupted run's boundary report byte
// for byte — through an Encode/Decode cycle, exactly like the CLI.
func TestSearchCheckpointResume(t *testing.T) {
	want, _ := runToBytes(t, testConfig())
	for halt := 1; halt < testConfig().Generations; halt++ {
		var data []byte
		cfg := testConfig()
		cfg.OnGeneration = func(p Progress) error {
			if p.Generation >= halt {
				enc, err := p.Checkpoint().Encode()
				if err != nil {
					t.Fatal(err)
				}
				data = enc
				return ErrHalted
			}
			return nil
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted || res.Generations != halt {
			t.Fatalf("halt at %d: got halted=%v generations=%d", halt, res.Halted, res.Generations)
		}
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("halt at %d: %v", halt, err)
		}
		resumed := Config{Resume: ck, Workers: 3}
		got, _ := runToBytes(t, resumed)
		if !bytes.Equal(got, want) {
			t.Errorf("resume after generation %d diverges from the uninterrupted run", halt)
		}
	}
}

// A corrupted checkpoint must fail loudly, and conflicting resume
// overrides must be rejected.
func TestSearchCheckpointIntegrity(t *testing.T) {
	var data []byte
	cfg := testConfig()
	cfg.OnGeneration = func(p Progress) error {
		enc, err := p.Checkpoint().Encode()
		if err != nil {
			t.Fatal(err)
		}
		data = enc
		return ErrHalted
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(data, []byte(`"seed": 11`), []byte(`"seed": 13`), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("corruption did not change the checkpoint bytes")
	}
	if _, err := DecodeCheckpoint(flipped); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted checkpoint decoded: %v", err)
	}
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Config{Resume: ck, Seed: 999}); err == nil {
		t.Fatal("conflicting resume seed accepted")
	}
	if _, err := Run(context.Background(), Config{Resume: ck, GenerationSize: 1}); err == nil {
		t.Fatal("conflicting resume generation size accepted")
	}
	// Extending a finished run is the one legal override.
	if _, err := Run(context.Background(), Config{Resume: ck, Generations: ck.Generations + 1}); err != nil {
		t.Fatalf("extending the run: %v", err)
	}
}

// The steering must concentrate the post-warmup budget: the share of
// post-warmup samples at or below the warmup bottom-quartile margin must
// be at least twice the uniform baseline (25%). This is the acceptance
// gate CI re-checks on the CLI's telemetry counters.
func TestSearchConcentration(t *testing.T) {
	tel := scenario.NewTelemetry()
	cfg := Config{Seed: 3, Generations: 8, GenerationSize: 64, Warmup: 2, Telemetry: tel}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PostWarmup == 0 {
		t.Fatal("no post-warmup samples carried margins")
	}
	if 2*res.Bottom < res.PostWarmup {
		t.Fatalf("concentration %d/%d = %.0f%% below the 50%% gate (2x the uniform 25%% baseline)",
			res.Bottom, res.PostWarmup, 100*float64(res.Bottom)/float64(res.PostWarmup))
	}
	snap := tel.Snapshot()
	if got := snap.Counters["search.postWarmup"]; got != int64(res.PostWarmup) {
		t.Errorf("search.postWarmup counter %d != result %d", got, res.PostWarmup)
	}
	if got := snap.Counters["search.bottomQuartile"]; got != int64(res.Bottom) {
		t.Errorf("search.bottomQuartile counter %d != result %d", got, res.Bottom)
	}
	if got := snap.Counters["search.samples"]; got != int64(res.Samples) {
		t.Errorf("search.samples counter %d != result %d", got, res.Samples)
	}
}

// Mutations must stay inside the generator bounds and the registry's
// validity envelope: every corpus spec and every boundary spec of a run
// with heavy mutation must validate.
func TestSearchMutantsStayValid(t *testing.T) {
	cfg := Config{Seed: 5, Generations: 6, GenerationSize: 32, Warmup: 1, MutationShare: 90,
		Gen: scenario.GenConfig{MaxRing: 8}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutations == 0 {
		t.Fatal("mutation share 90 produced no mutations")
	}
	reg := scenario.DefaultRegistry()
	for _, e := range res.Corpus {
		if err := reg.ValidateSpec(e.Spec); err != nil {
			t.Errorf("corpus spec %s invalid: %v", e.Spec.ID(), err)
		}
		if e.Spec.Ring > 8 {
			t.Errorf("corpus spec %s escaped MaxRing 8", e.Spec.ID())
		}
	}
}

// FamilyWeights must shape the explore pool: an all-weight-on-one-family
// config may only ever sample that family.
func TestSearchFamilyWeights(t *testing.T) {
	cfg := Config{Seed: 2, Generations: 3, GenerationSize: 16, Warmup: 1,
		Gen: scenario.GenConfig{FamilyWeights: "bernoulli=5"}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 1 || res.Arms[0].Family != "bernoulli" {
		t.Fatalf("weighted pool not respected: arms %+v", res.Arms)
	}
	for _, row := range res.Boundary {
		if row.Family != "bernoulli" {
			t.Errorf("boundary row for unexpected family %q", row.Family)
		}
	}
	bad := Config{Gen: scenario.GenConfig{FamilyWeights: "bernoulli=0"}}
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// The corpus must honor its bound, stay sorted by ascending margin, and
// hold no duplicate spec IDs.
func TestSearchCorpusInvariants(t *testing.T) {
	cfg := testConfig()
	cfg.CorpusSize = 5
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corpus) > 5 {
		t.Fatalf("corpus of %d exceeds bound 5", len(res.Corpus))
	}
	seen := map[string]bool{}
	for i, e := range res.Corpus {
		id := e.Spec.ID()
		if seen[id] {
			t.Errorf("duplicate corpus spec %s", id)
		}
		seen[id] = true
		if i > 0 && e.Rel < res.Corpus[i-1].Rel {
			t.Errorf("corpus unsorted at %d: %d‰ after %d‰", i, e.Rel, res.Corpus[i-1].Rel)
		}
	}
}
