// Package cache is pefserve's content-addressed verdict store: a
// byte-accounted LRU from canonical spec identity to the full
// scenario.Verdict, with singleflight coalescing so N concurrent
// requests for one spec cost one simulation, and an optional checksummed
// disk spill (spill.go) so a restarted daemon warms instead of
// recomputing.
//
// Content addressing is sound here because a Spec pins its execution
// completely: the same spec replays bit for bit, and verdict bytes are
// invariant under engine blocking (lockstep vs scalar, any lane width,
// any worker count) — the repo-wide byte-identity guarantee. The one
// hazard is name aliasing: a custom algorithm or family registered under
// some name would collide with a different process's meaning of that
// name. Key therefore refuses specs outside the built-in registry
// surface (ErrUnfingerprintable) and prefixes every key with a
// fingerprint of that surface, so caches never serve a verdict across
// differing built-in sets.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// Lookup outcomes reported by GetOrRun (and the X-Pef-Cache header).
const (
	// StatusHit: the verdict was served from the store.
	StatusHit = "hit"
	// StatusMiss: this call ran the simulation.
	StatusMiss = "miss"
	// StatusCoalesced: an identical concurrent request was already
	// running the simulation; this call waited for its verdict.
	StatusCoalesced = "coalesced"
)

// ErrUnfingerprintable rejects caching for specs that reference names
// outside the built-in registry surface. A custom registration is
// process-local — its meaning is not captured by the fingerprint — so
// caching such a verdict could serve one process's extension under
// another's. Callers must fail loudly, not silently bypass.
var ErrUnfingerprintable = errors.New("verdict cache: spec uses an extension outside the built-in registry surface")

// builtinSurface captures the names a fresh registry preloads — exactly
// the set whose semantics the binary pins.
type builtinSurface struct {
	fingerprint string
	algs        map[string]bool
	fams        map[string]bool
	props       map[string]bool
}

var builtins = sync.OnceValue(func() builtinSurface {
	reg := scenario.NewRegistry() // built-ins only, never custom registrations
	s := builtinSurface{algs: map[string]bool{}, fams: map[string]bool{}, props: map[string]bool{}}
	h := sha256.New()
	fmt.Fprintf(h, "spec-v%d\n", scenario.Version)
	for _, group := range []struct {
		kind  string
		names []string
		set   map[string]bool
	}{
		{"algorithm", reg.AlgorithmNames(), s.algs},
		{"family", reg.FamilyNames(), s.fams},
		{"property", reg.PropertyNames(), s.props},
	} {
		names := append([]string(nil), group.names...)
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "%s/%s\n", group.kind, n)
			group.set[n] = true
		}
	}
	s.fingerprint = hex.EncodeToString(h.Sum(nil))
	return s
})

// Fingerprint identifies this binary's built-in registry surface: a
// SHA-256 over the spec format version and the sorted built-in
// algorithm/family/property names. It prefixes every cache key and is
// embedded in disk spills, so stored verdicts survive restarts but never
// cross a change in the built-in set.
func Fingerprint() string { return builtins().fingerprint }

// Key returns the content address of a spec — Fingerprint()|Spec.ID() —
// or ErrUnfingerprintable when the spec references an algorithm, family
// or expectation outside the built-in surface.
func Key(s scenario.Spec) (string, error) {
	b := builtins()
	if !b.algs[s.Algorithm] {
		return "", fmt.Errorf("%w: algorithm %q (spec %s)", ErrUnfingerprintable, s.Algorithm, s.ID())
	}
	if !b.fams[s.Family] {
		return "", fmt.Errorf("%w: family %q (spec %s)", ErrUnfingerprintable, s.Family, s.ID())
	}
	if s.Expect != "" && !b.props[s.Expect] {
		return "", fmt.Errorf("%w: property %q (spec %s)", ErrUnfingerprintable, s.Expect, s.ID())
	}
	return b.fingerprint + "|" + s.ID(), nil
}

// Config parameterizes a Cache.
type Config struct {
	// Capacity bounds the store in accounted bytes — key length plus
	// encoded verdict length plus a fixed per-entry overhead. Values
	// <= 0 mean 256 MiB.
	Capacity int64
	// Telemetry, when non-nil, receives the cache.* counters and gauges
	// (hits, misses, evictions, coalesced, stores; bytes, entries).
	Telemetry *telemetry.Registry
}

// Cache is the store itself. All methods are safe for concurrent use.
type Cache struct {
	capacity int64

	mu      sync.Mutex
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
	bytes   int64

	hits, misses, evictions, coalesced, stores *telemetry.Counter
	bytesG, entriesG                           *telemetry.Gauge
}

type entry struct {
	key  string
	v    scenario.Verdict
	size int64
}

// flight is one in-progress computation; waiters block on done and read
// v afterwards (the channel close publishes the write).
type flight struct {
	done chan struct{}
	v    scenario.Verdict
}

// New creates an empty cache.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256 << 20
	}
	reg := cfg.Telemetry
	return &Cache{
		capacity:  cfg.Capacity,
		lru:       list.New(),
		entries:   map[string]*list.Element{},
		flights:   map[string]*flight{},
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
		coalesced: reg.Counter("cache.coalesced"),
		stores:    reg.Counter("cache.stores"),
		bytesG:    reg.Gauge("cache.bytes"),
		entriesG:  reg.Gauge("cache.entries"),
	}
}

// Get returns the stored verdict for key, counting a hit or miss and
// refreshing recency on hits.
func (c *Cache) Get(key string) (scenario.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.getLocked(key)
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put stores a computed verdict under key. Verdicts carrying an
// execution error (Err != "", which includes cancellations) are
// discarded — a transient failure must be recomputed, never replayed.
func (c *Cache) Put(key string, v scenario.Verdict) {
	if v.Err != "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, v)
}

// GetOrRun returns the verdict for key, computing it via run on a miss.
// Concurrent calls for the same key coalesce: exactly one executes run,
// the rest wait for its verdict (or their context). The returned status
// is StatusHit, StatusMiss or StatusCoalesced.
func (c *Cache) GetOrRun(ctx context.Context, key string, run func() scenario.Verdict) (scenario.Verdict, string, error) {
	c.mu.Lock()
	if v, ok := c.getLocked(key); ok {
		c.hits.Inc()
		c.mu.Unlock()
		return v, StatusHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.v, StatusCoalesced, nil
		case <-ctx.Done():
			return scenario.Verdict{}, "", ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses.Inc()
	c.mu.Unlock()

	v := run()
	c.mu.Lock()
	delete(c.flights, key)
	if v.Err == "" {
		c.putLocked(key, v)
	}
	c.mu.Unlock()
	f.v = v
	close(f.done)
	return v, StatusMiss, nil
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the accounted size of the store.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) getLocked(key string) (scenario.Verdict, bool) {
	el, ok := c.entries[key]
	if !ok {
		return scenario.Verdict{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).v, true
}

// entryOverhead approximates the per-entry bookkeeping (list element,
// map slot, entry struct) the byte accounting charges beyond the
// payload.
const entryOverhead = 128

func entrySize(key string, v scenario.Verdict) int64 {
	size := int64(len(key)) + entryOverhead
	if data, err := json.Marshal(v); err == nil {
		size += int64(len(data))
	}
	return size
}

func (c *Cache) putLocked(key string, v scenario.Verdict) {
	if el, ok := c.entries[key]; ok {
		// Content-addressed: a re-store is byte-identical by
		// construction, so only the recency changes.
		c.lru.MoveToFront(el)
		return
	}
	e := &entry{key: key, v: v, size: entrySize(key, v)}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.size
	c.stores.Inc()
	for c.bytes > c.capacity && c.lru.Len() > 0 {
		back := c.lru.Back()
		be := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, be.key)
		c.bytes -= be.size
		c.evictions.Inc()
	}
	c.bytesG.Set(c.bytes)
	c.entriesG.Set(int64(c.lru.Len()))
}
