package cache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// testSpec is a valid all-builtin spec; vary the seed for distinct keys
// of identical accounted size (seeds 10..99 share a digit count).
func testSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Version:   scenario.Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: scenario.PlaceEven,
		Family:    "bernoulli",
		Params:    scenario.Params{P: 0.5},
		Horizon:   50,
		Seed:      seed,
	}
}

func mustKey(t *testing.T, s scenario.Spec) string {
	t.Helper()
	key, err := Key(s)
	if err != nil {
		t.Fatalf("Key(%s): %v", s.ID(), err)
	}
	return key
}

func TestKeyFingerprintsBuiltinSurface(t *testing.T) {
	s := testSpec(10)
	key := mustKey(t, s)
	if want := Fingerprint() + "|" + s.ID(); key != want {
		t.Fatalf("key = %q, want %q", key, want)
	}
	if Fingerprint() != Fingerprint() {
		t.Fatal("fingerprint not stable")
	}

	// Every name class outside the built-in surface must be refused —
	// whether the name is entirely unknown or a live custom registration
	// (its semantics are process-local either way).
	cases := map[string]scenario.Spec{}
	alg := s
	alg.Algorithm = "my-custom-walker"
	cases["algorithm"] = alg
	fam := s
	fam.Family = "my-custom-family"
	cases["family"] = fam
	prop := s
	prop.Expect = "my-custom-property"
	cases["property"] = prop
	for class, bad := range cases {
		if _, err := Key(bad); !errors.Is(err, ErrUnfingerprintable) {
			t.Errorf("custom %s: err = %v, want ErrUnfingerprintable", class, err)
		}
	}

	// Built-in expectations are fingerprintable.
	exp := s
	exp.Expect = scenario.ExpectExplore
	mustKey(t, exp)
}

func TestGetPutAndCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Config{Telemetry: reg})
	s := testSpec(11)
	key := mustKey(t, s)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	v := scenario.Run(s)
	c.Put(key, v)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored verdict missed")
	}
	if got != v {
		t.Fatalf("cache returned a different verdict:\n got %+v\nwant %+v", got, v)
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.hits"] != 1 || snap.Counters["cache.misses"] != 1 || snap.Counters["cache.stores"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["cache.entries"].Value != 1 {
		t.Fatalf("entries gauge = %+v", snap.Gauges["cache.entries"])
	}
}

func TestPutDiscardsErrorVerdicts(t *testing.T) {
	c := New(Config{})
	s := testSpec(12)
	key := mustKey(t, s)
	v := scenario.Run(s)
	v.Err = "simulated failure"
	c.Put(key, v)
	if _, ok := c.Get(key); ok {
		t.Fatal("an errored verdict was cached; transient failures must be recomputed")
	}
}

// TestLRUEvictionOrder pins the eviction discipline: least recently
// *used* goes first, where Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	// Measure one entry's accounted size with a scratch cache; seeds
	// 10..13 render with equal width, so all entries weigh the same.
	scratch := New(Config{})
	scratch.Put(mustKey(t, testSpec(10)), scenario.Run(testSpec(10)))
	size := scratch.Bytes()

	reg := telemetry.NewRegistry()
	c := New(Config{Capacity: 3 * size, Telemetry: reg})
	keys := make([]string, 4)
	for i, seed := range []uint64{10, 11, 12, 13} {
		keys[i] = mustKey(t, testSpec(seed))
	}
	for i := 0; i < 3; i++ {
		c.Put(keys[i], scenario.Run(testSpec(uint64(10+i))))
	}
	// Touch key 0: key 1 becomes the eviction candidate.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(keys[3], scenario.Run(testSpec(13)))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(keys[i]); !ok {
			t.Fatalf("key %d was evicted, want key 1 only", i)
		}
	}
	if n := reg.Snapshot().Counters["cache.evictions"]; n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
}

// TestGetOrRunCoalesces: N concurrent identical requests must cost one
// simulation and all receive the identical verdict. Deterministic
// orchestration: the first runner blocks inside run until every waiter
// has registered on its flight.
func TestGetOrRunCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(Config{Telemetry: reg})
	s := testSpec(14)
	key := mustKey(t, s)
	want := scenario.Run(s)

	const waiters = 8
	started := make(chan struct{})
	release := make(chan struct{})
	runs := 0
	leaderDone := make(chan scenario.Verdict, 1)
	go func() {
		v, status, err := c.GetOrRun(context.Background(), key, func() scenario.Verdict {
			runs++
			close(started)
			<-release
			return scenario.Run(s)
		})
		if err != nil || status != StatusMiss {
			t.Errorf("leader: status=%q err=%v", status, err)
		}
		leaderDone <- v
	}()
	<-started

	var wg sync.WaitGroup
	got := make([]scenario.Verdict, waiters)
	statuses := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, status, err := c.GetOrRun(context.Background(), key, func() scenario.Verdict {
				t.Error("a coalesced waiter ran the simulation")
				return scenario.Verdict{}
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			got[i] = v
			statuses[i] = status
		}()
	}
	// Release only after every waiter is parked on the flight (the
	// coalesced counter counts registrations).
	for c.coalescedValue() < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
	if v := <-leaderDone; v != want {
		t.Fatalf("leader verdict diverged from direct run")
	}
	for i := 0; i < waiters; i++ {
		if got[i] != want {
			t.Fatalf("waiter %d verdict diverged", i)
		}
		if statuses[i] != StatusCoalesced {
			t.Fatalf("waiter %d status = %q, want %q", i, statuses[i], StatusCoalesced)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.coalesced"] != waiters || snap.Counters["cache.misses"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	// And afterwards: a plain hit.
	if _, status, _ := c.GetOrRun(context.Background(), key, func() scenario.Verdict {
		t.Error("post-coalesce request ran the simulation")
		return scenario.Verdict{}
	}); status != StatusHit {
		t.Fatalf("post-coalesce status = %q", status)
	}
}

// coalescedValue reads the coalesced counter (test helper; the counter
// is atomic).
func (c *Cache) coalescedValue() int {
	return int(c.coalesced.Value())
}

func TestGetOrRunWaiterHonorsContext(t *testing.T) {
	c := New(Config{})
	key := mustKey(t, testSpec(15))
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.GetOrRun(context.Background(), key, func() scenario.Verdict {
		close(started)
		<-release
		return scenario.Run(testSpec(15))
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrRun(ctx, key, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v", err)
	}
}

func TestGetOrRunDoesNotCacheErrors(t *testing.T) {
	c := New(Config{})
	key := mustKey(t, testSpec(16))
	bad := scenario.Verdict{ID: testSpec(16).ID(), Outcome: "error", Err: "boom"}
	if v, status, err := c.GetOrRun(context.Background(), key, func() scenario.Verdict { return bad }); err != nil || status != StatusMiss || v != bad {
		t.Fatalf("first call: v=%+v status=%q err=%v", v, status, err)
	}
	ran := false
	c.GetOrRun(context.Background(), key, func() scenario.Verdict { ran = true; return scenario.Run(testSpec(16)) })
	if !ran {
		t.Fatal("errored verdict was cached; the retry never re-ran")
	}
}

// TestFingerprintCoversNames: two differently-named surfaces must not
// fingerprint alike — spelled as a direct sensitivity check on the hash
// input (the set of built-ins is fixed in-process, so this guards the
// construction, not the runtime).
func TestFingerprintConstruction(t *testing.T) {
	fp := Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not hex SHA-256", fp)
	}
	// The surface must include the names the stock campaigns rely on.
	b := builtins()
	for _, alg := range []string{"pef3+", "pef2", "pef1"} {
		if !b.algs[alg] {
			t.Fatalf("builtin surface is missing algorithm %q", alg)
		}
	}
	for _, fam := range []string{"bernoulli", "static", scenario.FamilyConfineTwo, "periodic"} {
		if !b.fams[fam] {
			t.Fatalf("builtin surface is missing family %q", fam)
		}
	}
	for _, prop := range []string{scenario.ExpectExplore, scenario.ExpectConfine, scenario.ExpectNone} {
		if !b.props[prop] {
			t.Fatalf("builtin surface is missing property %q", prop)
		}
	}
}

// TestKeyDistinctAcrossSpecs spot-checks that distinct specs address
// distinct content (the exhaustive per-field audit lives in the scenario
// package's TestSpecIDCoversEveryField).
func TestKeyDistinctAcrossSpecs(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(10); seed < 20; seed++ {
		key := mustKey(t, testSpec(seed))
		if seen[key] {
			t.Fatalf("duplicate key %q", key)
		}
		seen[key] = true
	}
}
