package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"pef/internal/scenario"
)

// spillVersion is the on-disk spill format version.
const spillVersion = 1

// spillDoc is the disk image of a cache: the stored verdicts in
// least-recently-used-first order (warming replays them through the LRU,
// reproducing the recency order), guarded by the registry fingerprint
// and a SHA-256 content checksum in the campaign-checkpoint style.
type spillDoc struct {
	Version     int                `json:"version"`
	Fingerprint string             `json:"fingerprint"`
	Verdicts    []scenario.Verdict `json:"verdicts"`
	Checksum    string             `json:"checksum,omitempty"`
}

// contentChecksum hashes the spill content: the indented JSON rendering
// with the Checksum field cleared, so the stored hash covers everything
// else.
func (d *spillDoc) contentChecksum() (string, error) {
	cp := *d
	cp.Checksum = ""
	body, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}

// WriteSpill atomically persists the cache under path (write to a temp
// file, fsync, rename — the checkpoint discipline) and returns the
// number of verdicts written. Keys are not stored: they are recomputed
// from each verdict's spec on warm, which is also what keeps a spill
// useless to a binary whose built-in surface moved.
func (c *Cache) WriteSpill(path string) (int, error) {
	doc := spillDoc{Version: spillVersion, Fingerprint: Fingerprint()}
	c.mu.Lock()
	doc.Verdicts = make([]scenario.Verdict, 0, c.lru.Len())
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		doc.Verdicts = append(doc.Verdicts, el.Value.(*entry).v)
	}
	c.mu.Unlock()
	sum, err := doc.contentChecksum()
	if err != nil {
		return 0, fmt.Errorf("verdict cache: spill checksum: %w", err)
	}
	doc.Checksum = sum
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("verdict cache: encode spill: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return len(doc.Verdicts), nil
}

// WarmFromSpill loads a spill written by WriteSpill, returning the
// number of verdicts admitted. A missing file is a quiet cold start.
// Damaged or foreign spills — unparseable JSON, a version or fingerprint
// mismatch, a failed checksum — are a LOUD warning through warnf and a
// cold start: the cache recomputes rather than trusting suspect bytes.
// warnf nil means stderr.
func (c *Cache) WarmFromSpill(path string, warnf func(format string, args ...any)) (int, error) {
	if warnf == nil {
		warnf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var doc spillDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		warnf("verdict cache: WARNING: spill %s is unreadable (%v); starting cold, verdicts will be recomputed", path, err)
		return 0, nil
	}
	if doc.Version != spillVersion {
		warnf("verdict cache: WARNING: spill %s has format version %d (want %d); starting cold", path, doc.Version, spillVersion)
		return 0, nil
	}
	want, err := doc.contentChecksum()
	if err != nil || doc.Checksum == "" || doc.Checksum != want {
		warnf("verdict cache: WARNING: spill %s failed its content checksum; starting cold, verdicts will be recomputed", path)
		return 0, nil
	}
	if doc.Fingerprint != Fingerprint() {
		warnf("verdict cache: WARNING: spill %s was written under a different built-in registry surface; starting cold", path)
		return 0, nil
	}
	warmed := 0
	for _, v := range doc.Verdicts {
		key, err := Key(v.Spec)
		if err != nil || v.Err != "" {
			// Unreachable for spills this binary wrote, but a hand-edited
			// file must not smuggle unfingerprintable entries in.
			warnf("verdict cache: WARNING: spill %s entry %s skipped: unfingerprintable or errored", path, v.ID)
			continue
		}
		c.Put(key, v)
		warmed++
	}
	return warmed, nil
}
