package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pef/internal/scenario"
)

func collectWarnings() (func(format string, args ...any), *[]string) {
	var lines []string
	return func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, &lines
}

func TestSpillRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.spill")
	a := New(Config{})
	verdicts := map[string]scenario.Verdict{}
	for seed := uint64(20); seed < 25; seed++ {
		s := testSpec(seed)
		v := scenario.Run(s)
		key := mustKey(t, s)
		a.Put(key, v)
		verdicts[key] = v
	}
	n, err := a.WriteSpill(path)
	if err != nil {
		t.Fatalf("WriteSpill: %v", err)
	}
	if n != 5 {
		t.Fatalf("spilled %d verdicts, want 5", n)
	}

	b := New(Config{})
	warnf, warnings := collectWarnings()
	warmed, err := b.WarmFromSpill(path, warnf)
	if err != nil {
		t.Fatalf("WarmFromSpill: %v", err)
	}
	if warmed != 5 {
		t.Fatalf("warmed %d verdicts, want 5", warmed)
	}
	if len(*warnings) != 0 {
		t.Fatalf("clean warm produced warnings: %v", *warnings)
	}
	for key, want := range verdicts {
		got, ok := b.Get(key)
		if !ok {
			t.Fatalf("warmed cache missed %s", key)
		}
		if got != want {
			t.Fatalf("warmed verdict diverged for %s", key)
		}
	}
}

// TestSpillRecencyOrderSurvives: the spill stores LRU order, so an
// immediately-over-capacity warm keeps the most recently used entries.
func TestSpillRecencyOrderSurvives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.spill")
	a := New(Config{})
	keys := make([]string, 4)
	for i, seed := range []uint64{20, 21, 22, 23} {
		s := testSpec(seed)
		keys[i] = mustKey(t, s)
		a.Put(keys[i], scenario.Run(s))
	}
	// Touch key 0 so the LRU order is 1, 2, 3, 0 (least → most recent).
	a.Get(keys[0])
	if _, err := a.WriteSpill(path); err != nil {
		t.Fatalf("WriteSpill: %v", err)
	}

	size := a.Bytes() / 4
	b := New(Config{Capacity: 2 * size})
	if _, err := b.WarmFromSpill(path, nil); err != nil {
		t.Fatalf("WarmFromSpill: %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("warmed cache holds %d entries, want 2", b.Len())
	}
	for _, i := range []int{3, 0} {
		if _, ok := b.Get(keys[i]); !ok {
			t.Fatalf("most-recent key %d did not survive the bounded warm", i)
		}
	}
}

func TestSpillCorruptionFallsBackLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.spill")
	a := New(Config{})
	s := testSpec(30)
	a.Put(mustKey(t, s), scenario.Run(s))
	if _, err := a.WriteSpill(path); err != nil {
		t.Fatalf("WriteSpill: %v", err)
	}

	// Flip verdict content without breaking the JSON: the checksum must
	// catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(data), `"ok": true`, `"ok": false`, 1)
	if corrupted == string(data) {
		corrupted = strings.Replace(string(data), `"outcome"`, `"outcomE"`, 1)
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	b := New(Config{})
	warnf, warnings := collectWarnings()
	warmed, err := b.WarmFromSpill(path, warnf)
	if err != nil {
		t.Fatalf("WarmFromSpill on corrupted spill errored hard: %v", err)
	}
	if warmed != 0 || b.Len() != 0 {
		t.Fatalf("corrupted spill warmed %d entries", warmed)
	}
	if len(*warnings) != 1 || !strings.Contains((*warnings)[0], "WARNING") || !strings.Contains((*warnings)[0], "checksum") {
		t.Fatalf("expected one loud checksum WARNING, got %v", *warnings)
	}
	// Recompute-on-fallback: the cache still works.
	key := mustKey(t, s)
	if _, status, err := b.GetOrRun(t.Context(), key, func() scenario.Verdict { return scenario.Run(s) }); err != nil || status != StatusMiss {
		t.Fatalf("recompute after fallback: status=%q err=%v", status, err)
	}
}

func TestSpillUnparseableFallsBackLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.spill")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	warnf, warnings := collectWarnings()
	if warmed, err := New(Config{}).WarmFromSpill(path, warnf); err != nil || warmed != 0 {
		t.Fatalf("warmed=%d err=%v", warmed, err)
	}
	if len(*warnings) != 1 || !strings.Contains((*warnings)[0], "WARNING") {
		t.Fatalf("expected a loud WARNING, got %v", *warnings)
	}
}

func TestSpillForeignFingerprintFallsBackLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.spill")
	doc := spillDoc{Version: spillVersion, Fingerprint: strings.Repeat("ab", 32)}
	sum, err := doc.contentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	doc.Checksum = sum
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	warnf, warnings := collectWarnings()
	if warmed, _ := New(Config{}).WarmFromSpill(path, warnf); warmed != 0 {
		t.Fatalf("foreign-fingerprint spill warmed %d entries", warmed)
	}
	if len(*warnings) != 1 || !strings.Contains((*warnings)[0], "registry surface") {
		t.Fatalf("expected a loud surface WARNING, got %v", *warnings)
	}
}

func TestSpillMissingFileIsQuietColdStart(t *testing.T) {
	warnf, warnings := collectWarnings()
	warmed, err := New(Config{}).WarmFromSpill(filepath.Join(t.TempDir(), "nope.spill"), warnf)
	if err != nil || warmed != 0 {
		t.Fatalf("warmed=%d err=%v", warmed, err)
	}
	if len(*warnings) != 0 {
		t.Fatalf("missing spill warned: %v", *warnings)
	}
}
