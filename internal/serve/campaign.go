package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"pef/internal/scenario"
	"pef/internal/serve/cache"
)

// CampaignRequest is the POST /campaign body: the client-visible half of
// scenario.CampaignConfig (generator identity and output shape), with
// the pool shape deliberately server-owned.
type CampaignRequest struct {
	// Generator names the sampler; empty means "uniform".
	Generator string `json:"generator,omitempty"`
	// Gen bounds the sampled parameter space.
	Gen scenario.GenConfig `json:"gen,omitempty"`
	// Count is the number of scenarios per seed (values < 1 mean 1).
	Count int `json:"count,omitempty"`
	// Seeds lists the generator seeds; empty means {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Verdicts streams one JSON line per verdict, flushed per verdict,
	// ahead of the final aggregate.
	Verdicts bool `json:"verdicts,omitempty"`
	// JSON renders the final aggregate as the versioned campaign JSON
	// document instead of the human-readable report.
	JSON bool `json:"json,omitempty"`
	// Cache set to "off" bypasses the verdict cache for this campaign;
	// empty (or "on") uses it when the server has one.
	Cache string `json:"cache,omitempty"`
}

// handleCampaign streams a campaign: optional per-verdict JSON lines
// (flushed each) followed by the final aggregate — whose bytes, in
// report or JSON mode without verdict lines, are exactly the
// single-process pefscenarios output for the same config. Configuration
// errors surface as a 400 before any byte streams; after streaming
// starts, failures arrive as a loud "pefserve: ERROR" trailer line.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	s.campaigns.Inc()
	var req CampaignRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ccfg := scenario.CampaignConfig{
		Registry:        s.reg,
		Generator:       req.Generator,
		Gen:             req.Gen,
		Count:           req.Count,
		Seeds:           req.Seeds,
		Workers:         s.cfg.Workers,
		LaneWidth:       s.cfg.LaneWidth,
		DisableLockstep: s.cfg.DisableLockstep,
		Telemetry:       s.tel,
	}
	var cc *campaignCache
	if s.store != nil && req.Cache != "off" {
		cc = &campaignCache{store: s.store}
		ccfg.Cache = cc
	}
	agg, err := scenario.NewAggregate(ccfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Headers are not sent until the first body write, so a
	// config-failure yield (the stream's first and only pair, before any
	// verdict) can still 400 below.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one verdict per line
	streamed := 0
	for v, serr := range scenario.StreamCampaign(r.Context(), ccfg) {
		if serr != nil && v.ID == "" {
			writeError(w, http.StatusBadRequest, serr.Error())
			return
		}
		if serr != nil {
			// Context cancelled: the client hung up (the server's drain
			// never cancels the stream context). Nobody is listening.
			s.logf("serve: campaign abandoned after %d verdicts: %v", streamed, serr)
			return
		}
		if err := cc.firstError(); err != nil {
			s.interruptedCampaigns.Inc()
			s.logf("serve: campaign aborted: %v", err)
			fmt.Fprintf(w, "pefserve: ERROR: %v; campaign aborted — resubmit with \"cache\":\"off\" to run it uncached\n", err)
			return
		}
		agg.Add(v)
		streamed++
		if req.Verdicts {
			enc.Encode(v) //nolint:errcheck // a lost client surfaces as stream cancellation
			s.verdictsStreamed.Inc()
			if flusher != nil {
				flusher.Flush()
			}
		}
		select {
		case <-s.abortCh:
			s.interruptedCampaigns.Inc()
			s.logf("serve: campaign interrupted by drain after %d verdicts", streamed)
			fmt.Fprintf(w, "pefserve: ERROR: campaign interrupted by server drain after %d scenarios; no report\n", streamed)
			return
		default:
		}
	}
	s.verdictsReturned.Add(int64(streamed))
	if req.JSON {
		agg.WriteJSON(w) //nolint:errcheck // client gone: nothing to report to
		return
	}
	agg.WriteReport(w) //nolint:errcheck // client gone: nothing to report to
}

// campaignCache adapts the content-addressed store to the campaign's
// VerdictCache hook. Unfingerprintable specs are not silently bypassed:
// the first such error is captured and the campaign handler aborts the
// stream loudly — caching was requested, so failing to cache is a
// request failure, not a quiet degradation.
type campaignCache struct {
	store *cache.Cache

	mu  sync.Mutex
	err error
}

func (a *campaignCache) Lookup(s scenario.Spec) (scenario.Verdict, bool) {
	key, err := cache.Key(s)
	if err != nil {
		a.record(err)
		return scenario.Verdict{}, false
	}
	return a.store.Get(key)
}

func (a *campaignCache) Store(s scenario.Spec, v scenario.Verdict) {
	key, err := cache.Key(s)
	if err != nil {
		a.record(err)
		return
	}
	a.store.Put(key, v)
}

func (a *campaignCache) record(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// firstError returns the first keying failure; nil receiver means "no
// cache attached".
func (a *campaignCache) firstError() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// decodeBody parses a bounded JSON request body, rejecting unknown
// fields so typos fail loudly instead of silently running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}
