package serve

import (
	"math"
	"sync"
	"time"
)

// maxClients bounds the per-client bucket map: when a new client would
// exceed it, full (idle) buckets are pruned first, so remote-address
// churn cannot grow the limiter without bound.
const maxClients = 4096

// rateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and every admitted request spends one.
// The clock is injected for the fake-clock tests (the internal/lease
// style).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, clients: map[string]*bucket{}}
}

// allow spends one token from client's bucket. When the bucket is dry it
// reports false plus the wait until the next token accrues — the
// Retry-After the handler sends with the 429.
func (l *rateLimiter) allow(client string) (bool, time.Duration) {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		if len(l.clients) >= maxClients {
			l.pruneLocked(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.clients[client] = b
	} else if elapsed := t.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// pruneLocked drops buckets that have refilled completely — idle clients
// whose state is indistinguishable from a fresh bucket.
func (l *rateLimiter) pruneLocked(t time.Time) {
	for key, b := range l.clients {
		elapsed := t.Sub(b.last).Seconds()
		if math.Min(l.burst, b.tokens+elapsed*l.rate) >= l.burst {
			delete(l.clients, key)
		}
	}
}

// retryAfterSeconds renders a wait as the integral Retry-After header
// value, rounded up and at least 1 (a zero would invite an instant
// identical retry).
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
