package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the internal/lease test clock: manually advanced,
// concurrency-safe.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRateLimiterBurstThenLimited(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 3, clk.Now)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("request %d within burst was refused", i)
		}
	}
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("fourth request passed a burst of 3")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want (0, 1s] at 1 token/s", wait)
	}
}

func TestRateLimiterRefills(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(2, 2, clk.Now) // 2 tokens/s, depth 2
	l.allow("a")
	l.allow("a")
	if ok, _ := l.allow("a"); ok {
		t.Fatal("dry bucket admitted a request")
	}
	clk.Advance(500 * time.Millisecond) // one token accrues
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("refilled token was not granted")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("second request after a one-token refill was admitted")
	}
	clk.Advance(10 * time.Second) // refill clamps at burst
	l.allow("a")
	l.allow("a")
	if ok, _ := l.allow("a"); ok {
		t.Fatal("burst clamp failed: more than 2 tokens accrued")
	}
}

func TestRateLimiterClientsAreIsolated(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 1, clk.Now)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("a's first request refused")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("a's second request admitted past the burst")
	}
	// b's bucket is untouched by a's spending.
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("b was throttled by a's traffic")
	}
}

func TestRateLimiterPrunesIdleClients(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 1, clk.Now)
	for i := 0; i < maxClients; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	if len(l.clients) != maxClients {
		t.Fatalf("limiter tracks %d clients, want %d", len(l.clients), maxClients)
	}
	clk.Advance(time.Hour) // everyone refills → prunable
	l.allow("newcomer")
	if len(l.clients) != 1 {
		t.Fatalf("prune left %d clients, want 1 (the newcomer)", len(l.clients))
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestServerRateLimit429 drives the limiter through the HTTP admission
// pipeline: past the burst a client gets 429 with a Retry-After header,
// other clients are unaffected, and the rejection is counted.
func TestServerRateLimit429(t *testing.T) {
	clk := newFakeClock()
	srv := New(Config{Rate: 1, Burst: 2, Now: clk.Now})

	get := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.Header.Set("X-Pefserve-Client", client)
		w := httptest.NewRecorder()
		srv.admit(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})(w, req)
		return w
	}

	for i := 0; i < 2; i++ {
		if w := get("alice"); w.Code != http.StatusOK {
			t.Fatalf("request %d within burst: code %d", i, w.Code)
		}
	}
	w := get("alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: code %d, want 429", w.Code)
	}
	ra := w.Header().Get("Retry-After")
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
	if !strings.Contains(w.Body.String(), "rate limit") {
		t.Fatalf("429 body does not mention the rate limit: %s", w.Body.String())
	}
	if w := get("bob"); w.Code != http.StatusOK {
		t.Fatalf("bob was throttled by alice's traffic: code %d", w.Code)
	}
	if got := srv.tel.Snapshot().Counters["serve.rejected.rateLimited"]; got != 1 {
		t.Fatalf("serve.rejected.rateLimited = %d, want 1", got)
	}
	// The refused token accrues back with time.
	clk.Advance(time.Second)
	if w := get("alice"); w.Code != http.StatusOK {
		t.Fatalf("alice still throttled after a full refill interval: code %d", w.Code)
	}
}
