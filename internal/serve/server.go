// Package serve is the campaign-as-a-service daemon behind cmd/pefserve:
// a long-running HTTP server that runs scenario specs and whole
// campaigns on demand, streaming verdicts as JSON lines and reports as
// the exact bytes of the single-process pefscenarios run. In front of
// the engines sits the content-addressed verdict cache
// (internal/serve/cache) — duplicate specs across requests cost one
// simulation — plus per-client token-bucket rate limiting, bounded
// in-flight admission, and a graceful drain that lets open campaigns
// finish at a verdict boundary.
//
// Routes:
//
//	POST /run       one encoded Spec → its Verdict (?cache=off bypasses)
//	POST /campaign  CampaignRequest → optional JSONL verdicts + report
//	GET  /healthz   liveness + drain state
//	GET  /metrics   telemetry snapshot (engine, pool, cache, serve)
//
// Byte-identity invariant: the report a served campaign streams is
// byte-identical to the pefscenarios single-process run of the same
// config — cache on or off, any concurrency — because the server only
// rides scenario.StreamCampaign + Aggregate, whose bytes are invariant
// under worker count, lane width, engine path and (by the VerdictCache
// contract) caching.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pef/internal/scenario"
	"pef/internal/serve/cache"
	"pef/internal/telemetry"
)

// Config parameterizes New.
type Config struct {
	// Registry resolves spec names; nil means the process default.
	Registry *scenario.Registry
	// Cache, when non-nil, fronts the engines with the content-addressed
	// verdict store. Nil runs every request fresh.
	Cache *cache.Cache
	// Workers, LaneWidth and DisableLockstep size the campaign engine
	// exactly like CampaignConfig. They are server-owned — clients never
	// choose pool shapes, which keeps responses byte-identical across
	// deployments (the engine guarantees invariance anyway; this keeps
	// the knobs in one place). The worker pool is sized once per process:
	// every campaign runs under the same Workers budget, and MaxInFlight
	// bounds how many pools are live at once.
	Workers         int
	LaneWidth       int
	DisableLockstep bool
	// MaxInFlight bounds concurrently admitted /run + /campaign requests
	// (values < 1 mean 2×GOMAXPROCS); excess requests are refused with
	// 503 + Retry-After rather than queued.
	MaxInFlight int
	// Rate is the per-client admission rate in requests/second; <= 0
	// disables rate limiting. Burst is the bucket depth (values < 1 mean
	// ceil(Rate), at least 1). Clients are keyed by the ClientHeader
	// value when present, else the remote address host.
	Rate  float64
	Burst int
	// ClientHeader names the client-identity header; empty means
	// "X-Pefserve-Client".
	ClientHeader string
	// Telemetry instruments the engines and backs /metrics; its registry
	// also carries the serve.* counters (and cache.* when the Cache was
	// built on the same registry). Nil means a fresh private bundle.
	Telemetry *scenario.Telemetry
	// Now injects a clock for the rate limiter (tests); nil means
	// time.Now.
	Now func() time.Time
	// Logf receives server lifecycle lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server handles the routes above. Create with New; it is an
// http.Handler.
type Server struct {
	cfg      Config
	reg      *scenario.Registry
	tel      *scenario.Telemetry
	store    *cache.Cache
	limiter  *rateLimiter
	inflight chan struct{}
	mux      *http.ServeMux

	draining  atomic.Bool
	abortOnce sync.Once
	abortCh   chan struct{}

	requests, runs, campaigns          *telemetry.Counter
	rejectedDraining, rejectedBusy     *telemetry.Counter
	rateLimited, interruptedCampaigns  *telemetry.Counter
	verdictsStreamed, verdictsReturned *telemetry.Counter
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = scenario.DefaultRegistry()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = scenario.NewTelemetry()
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.ClientHeader == "" {
		cfg.ClientHeader = "X-Pefserve-Client"
	}
	reg := cfg.Telemetry.Registry()
	s := &Server{
		cfg:                  cfg,
		reg:                  cfg.Registry,
		tel:                  cfg.Telemetry,
		store:                cfg.Cache,
		inflight:             make(chan struct{}, cfg.MaxInFlight),
		abortCh:              make(chan struct{}),
		requests:             reg.Counter("serve.requests"),
		runs:                 reg.Counter("serve.runs"),
		campaigns:            reg.Counter("serve.campaigns"),
		rejectedDraining:     reg.Counter("serve.rejected.draining"),
		rejectedBusy:         reg.Counter("serve.rejected.busy"),
		rateLimited:          reg.Counter("serve.rejected.rateLimited"),
		interruptedCampaigns: reg.Counter("serve.campaigns.interrupted"),
		verdictsStreamed:     reg.Counter("serve.verdictLines"),
		verdictsReturned:     reg.Counter("serve.verdicts"),
	}
	if cfg.Rate > 0 {
		s.limiter = newRateLimiter(cfg.Rate, cfg.Burst, cfg.Now)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /run", s.admit(s.handleRun))
	mux.HandleFunc("POST /campaign", s.admit(s.handleCampaign))
	s.mux = mux
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// StartDrain stops admitting work: subsequent /run and /campaign
// requests get 503 and /healthz flips to draining, while requests
// already admitted keep streaming to completion. Idempotent.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.logf("serve: draining: refusing new work, open requests finish")
	}
}

// Abort makes open campaign streams stop at their next verdict boundary
// with a loud trailer line — the hard edge of a drain whose grace
// expired. Idempotent.
func (s *Server) Abort() {
	s.abortOnce.Do(func() {
		s.logf("serve: aborting open campaigns at the next verdict boundary")
		close(s.abortCh)
	})
}

// admit wraps a work handler with the admission pipeline: drain check,
// per-client rate limit (429 + Retry-After), bounded in-flight slots
// (503 + Retry-After).
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		if s.draining.Load() {
			s.rejectedDraining.Inc()
			writeError(w, http.StatusServiceUnavailable, "server is draining; submit to another instance")
			return
		}
		if s.limiter != nil {
			client := s.clientKey(r)
			if ok, wait := s.limiter.allow(client); !ok {
				s.rateLimited.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("rate limit exceeded for client %q; retry after %ds", client, retryAfterSeconds(wait)))
				return
			}
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.rejectedBusy.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server is at its in-flight capacity (%d)", s.cfg.MaxInFlight))
			return
		}
		h(w, r)
	}
}

// clientKey identifies a client for rate limiting: the configured header
// when present, else the remote address host.
func (s *Server) clientKey(r *http.Request) string {
	if v := r.Header.Get(s.cfg.ClientHeader); v != "" {
		return v
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

type healthzResponse struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthzResponse{Status: "draining", Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok"})
}

// handleMetrics serves the shared telemetry snapshot — engine, pool,
// cache.* and serve.* instruments — in the same indented-JSON shape as
// telemetry.Server's /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.tel.Snapshot()) //nolint:errcheck // client gone: nothing to report to
}

// handleRun executes one encoded Spec and returns its Verdict. With a
// cache configured the verdict is content-addressed: identical specs hit
// the store, concurrent identical requests coalesce onto one simulation,
// and the X-Pef-Cache header reports hit/miss/coalesced/bypass. Specs
// using unregistered extensions cannot be cached (their names are
// process-local); such requests fail loudly with 400 unless ?cache=off
// opts out.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runs.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	var spec scenario.Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	if spec.Version != scenario.Version {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unsupported spec version %d (want %d)", spec.Version, scenario.Version))
		return
	}

	var v scenario.Verdict
	status := "bypass"
	if s.store != nil && r.URL.Query().Get("cache") != "off" {
		key, err := cache.Key(spec)
		if err != nil {
			// Loud by design: silently bypassing would hide that a custom
			// registration is being served uncached.
			writeError(w, http.StatusBadRequest, fmt.Sprintf("%v; resubmit with ?cache=off to run it uncached", err))
			return
		}
		v, status, err = s.store.GetOrRun(r.Context(), key, func() scenario.Verdict {
			return s.runOne(r, spec)
		})
		if err != nil {
			return // the requester's context is gone; nobody is listening
		}
	} else {
		v = s.runOne(r, spec)
	}
	s.verdictsReturned.Inc()
	w.Header().Set("X-Pef-Cache", status)
	code := http.StatusOK
	if v.Err != "" {
		// The spec never produced a run (validation failure, panic,
		// cancellation): a client error, reported with the full verdict.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, v)
}

// runOne executes one spec under the server's registry and telemetry.
func (s *Server) runOne(r *http.Request, spec scenario.Spec) scenario.Verdict {
	v, err := scenario.RunWith(r.Context(), spec, scenario.RunOptions{Registry: s.reg, Telemetry: s.tel})
	if err != nil && v.Err == "" {
		v.Err = err.Error()
		v.OK = false
	}
	return v
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: "pefserve: " + msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing to report to
}
