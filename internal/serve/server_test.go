package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pef/internal/scenario"
	"pef/internal/serve/cache"
)

func testSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Version:   scenario.Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: scenario.PlaceEven,
		Family:    "bernoulli",
		Params:    scenario.Params{P: 0.5},
		Horizon:   50,
		Seed:      seed,
	}
}

func postJSON(t *testing.T, srv *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func get(srv *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func decodeVerdict(t *testing.T, body *bytes.Buffer) scenario.Verdict {
	t.Helper()
	var v scenario.Verdict
	if err := json.Unmarshal(body.Bytes(), &v); err != nil {
		t.Fatalf("decoding verdict: %v\nbody: %s", err, body.String())
	}
	return v
}

// TestRunServedEqualsDirect pins /run's core contract: the served
// verdict equals the direct in-process run — as a cold miss, a warm hit,
// and with the cache bypassed — with X-Pef-Cache reporting each path.
func TestRunServedEqualsDirect(t *testing.T) {
	srv := New(Config{Cache: cache.New(cache.Config{})})
	s := testSpec(40)
	want := scenario.Run(s)

	w := postJSON(t, srv, "/run", s)
	if w.Code != http.StatusOK {
		t.Fatalf("cold /run: code %d, body %s", w.Code, w.Body.String())
	}
	if st := w.Header().Get("X-Pef-Cache"); st != cache.StatusMiss {
		t.Fatalf("cold X-Pef-Cache = %q, want %q", st, cache.StatusMiss)
	}
	if got := decodeVerdict(t, w.Body); got != want {
		t.Fatalf("served verdict diverged from direct run:\n got %+v\nwant %+v", got, want)
	}

	w = postJSON(t, srv, "/run", s)
	if st := w.Header().Get("X-Pef-Cache"); st != cache.StatusHit {
		t.Fatalf("warm X-Pef-Cache = %q, want %q", st, cache.StatusHit)
	}
	if got := decodeVerdict(t, w.Body); got != want {
		t.Fatal("cached verdict diverged from direct run")
	}

	w = postJSON(t, srv, "/run?cache=off", s)
	if st := w.Header().Get("X-Pef-Cache"); st != "bypass" {
		t.Fatalf("bypass X-Pef-Cache = %q, want \"bypass\"", st)
	}
	if got := decodeVerdict(t, w.Body); got != want {
		t.Fatal("bypassed verdict diverged from direct run")
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	srv := New(Config{})

	req := httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(`{"ring": 8, "typo": 1}`))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "typo") {
		t.Fatalf("unknown field: code %d, body %s", w.Code, w.Body.String())
	}

	s := testSpec(41)
	s.Version = scenario.Version + 7
	if w := postJSON(t, srv, "/run", s); w.Code != http.StatusBadRequest ||
		!strings.Contains(w.Body.String(), "unsupported spec version") {
		t.Fatalf("foreign version: code %d, body %s", w.Code, w.Body.String())
	}
}

// TestRunUnfingerprintableFailsLoudly: caching was requested (the server
// has a cache and the client did not opt out) for a spec whose names are
// outside the built-in surface — that is a loud 400 with the opt-out
// spelled out, never a silent uncached run.
func TestRunUnfingerprintableFailsLoudly(t *testing.T) {
	srv := New(Config{Cache: cache.New(cache.Config{})})
	s := testSpec(42)
	s.Algorithm = "my-custom-walker"
	w := postJSON(t, srv, "/run", s)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("code %d, want 400; body %s", w.Code, w.Body.String())
	}
	body := w.Body.String()
	if !strings.Contains(body, "cache=off") || !strings.Contains(body, "my-custom-walker") {
		t.Fatalf("400 body does not explain the failure and the opt-out: %s", body)
	}
}

func directCampaign(t *testing.T, ccfg scenario.CampaignConfig, asJSON bool) string {
	t.Helper()
	agg, err := scenario.NewAggregate(ccfg)
	if err != nil {
		t.Fatalf("NewAggregate: %v", err)
	}
	for v, serr := range scenario.StreamCampaign(context.Background(), ccfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign: %v", serr)
		}
		agg.Add(v)
	}
	var buf bytes.Buffer
	if asJSON {
		err = agg.WriteJSON(&buf)
	} else {
		err = agg.WriteReport(&buf)
	}
	if err != nil {
		t.Fatalf("writing aggregate: %v", err)
	}
	return buf.String()
}

// TestCampaignByteIdentity is the tentpole invariant: the report a
// served campaign streams is byte-identical to the single-process
// pefscenarios run of the same config — on a cold cache, a warm cache,
// and with the cache off.
func TestCampaignByteIdentity(t *testing.T) {
	req := CampaignRequest{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     48,
		Seeds:     []uint64{5},
	}
	want := directCampaign(t, scenario.CampaignConfig{
		Generator: req.Generator,
		Gen:       req.Gen,
		Count:     req.Count,
		Seeds:     req.Seeds,
		Workers:   4,
	}, false)

	tel := scenario.NewTelemetry()
	srv := New(Config{
		Cache:     cache.New(cache.Config{Telemetry: tel.Registry()}),
		Workers:   4,
		Telemetry: tel,
	})
	for _, pass := range []string{"cold", "warm"} {
		w := postJSON(t, srv, "/campaign", req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s /campaign: code %d, body %s", pass, w.Code, w.Body.String())
		}
		if got := w.Body.String(); got != want {
			t.Fatalf("%s served report diverged from direct bytes:\n--- served ---\n%s\n--- direct ---\n%s", pass, got, want)
		}
	}
	if hits := srv.tel.Snapshot().Counters["cache.hits"]; hits < int64(req.Count) {
		t.Fatalf("warm pass hit %d of %d", hits, req.Count)
	}

	off := req
	off.Cache = "off"
	if w := postJSON(t, srv, "/campaign", off); w.Body.String() != want {
		t.Fatal("cache-off served report diverged from direct bytes")
	}
}

// TestCampaignVerdictLines: verdicts:true prepends one JSON line per
// verdict; the remainder of the stream is still the byte-identical
// report.
func TestCampaignVerdictLines(t *testing.T) {
	req := CampaignRequest{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     16,
		Seeds:     []uint64{5},
		Verdicts:  true,
	}
	want := directCampaign(t, scenario.CampaignConfig{
		Generator: req.Generator, Gen: req.Gen, Count: req.Count, Seeds: req.Seeds,
	}, false)

	srv := New(Config{})
	w := postJSON(t, srv, "/campaign", req)
	if w.Code != http.StatusOK {
		t.Fatalf("/campaign: code %d, body %s", w.Code, w.Body.String())
	}
	lines := strings.Split(w.Body.String(), "\n")
	if len(lines) < req.Count+1 {
		t.Fatalf("stream has %d lines, want at least %d verdicts + report", len(lines), req.Count+1)
	}
	for i := 0; i < req.Count; i++ {
		var v scenario.Verdict
		if err := json.Unmarshal([]byte(lines[i]), &v); err != nil {
			t.Fatalf("verdict line %d is not JSON: %v\nline: %s", i, err, lines[i])
		}
		if v.ID == "" || v.Err != "" {
			t.Fatalf("verdict line %d malformed: %+v", i, v)
		}
	}
	if got := strings.Join(lines[req.Count:], "\n"); got != want {
		t.Fatalf("report after verdict lines diverged:\n--- served ---\n%s\n--- direct ---\n%s", got, want)
	}
}

func TestCampaignJSONDocument(t *testing.T) {
	req := CampaignRequest{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     8,
		Seeds:     []uint64{5},
		JSON:      true,
	}
	want := directCampaign(t, scenario.CampaignConfig{
		Generator: req.Generator, Gen: req.Gen, Count: req.Count, Seeds: req.Seeds,
	}, true)
	srv := New(Config{})
	if w := postJSON(t, srv, "/campaign", req); w.Body.String() != want {
		t.Fatalf("served JSON document diverged:\n--- served ---\n%s\n--- direct ---\n%s", w.Body.String(), want)
	}
}

func TestCampaignConfigErrorsAre400(t *testing.T) {
	srv := New(Config{})
	if w := postJSON(t, srv, "/campaign", CampaignRequest{Generator: "no-such-sampler"}); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown generator: code %d, body %s", w.Code, w.Body.String())
	}
	req := httptest.NewRequest(http.MethodPost, "/campaign", strings.NewReader(`{"workers": 9}`))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "workers") {
		t.Fatalf("server-owned knob in request: code %d, body %s", w.Code, w.Body.String())
	}
}

// TestCampaignAbortedByDrain: once Abort fires (the drain grace
// expired), an open campaign stops at its next verdict boundary with a
// loud trailer instead of a report.
func TestCampaignAbortedByDrain(t *testing.T) {
	srv := New(Config{})
	srv.Abort()
	w := postJSON(t, srv, "/campaign", CampaignRequest{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     16,
		Seeds:     []uint64{5},
	})
	body := w.Body.String()
	if !strings.Contains(body, "pefserve: ERROR") || !strings.Contains(body, "interrupted by server drain") {
		t.Fatalf("aborted campaign lacks the loud trailer: %s", body)
	}
	if strings.Contains(body, "campaign:") {
		t.Fatalf("aborted campaign still streamed a report: %s", body)
	}
	if got := srv.tel.Snapshot().Counters["serve.campaigns.interrupted"]; got != 1 {
		t.Fatalf("serve.campaigns.interrupted = %d, want 1", got)
	}
}

func TestHealthzFlipsOnDrain(t *testing.T) {
	srv := New(Config{})
	if w := get(srv, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthy healthz: code %d, body %s", w.Code, w.Body.String())
	}
	srv.StartDrain()
	if w := get(srv, "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining healthz: code %d, body %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, srv, "/run", testSpec(43)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/run while draining: code %d, want 503", w.Code)
	}
	if got := srv.tel.Snapshot().Counters["serve.rejected.draining"]; got != 1 {
		t.Fatalf("serve.rejected.draining = %d, want 1", got)
	}
}

func TestMetricsExposesCacheAndServeCounters(t *testing.T) {
	tel := scenario.NewTelemetry()
	srv := New(Config{
		Cache:     cache.New(cache.Config{Telemetry: tel.Registry()}),
		Telemetry: tel,
	})
	postJSON(t, srv, "/run", testSpec(44))
	postJSON(t, srv, "/run", testSpec(44))
	w := get(srv, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: code %d", w.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	for counter, want := range map[string]int64{
		"cache.hits":     1,
		"cache.misses":   1,
		"serve.runs":     2,
		"serve.requests": 2,
	} {
		if got := snap.Counters[counter]; got != want {
			t.Errorf("%s = %d, want %d (counters: %v)", counter, got, want, snap.Counters)
		}
	}
}

// TestInFlightCapacity503: with every in-flight slot taken, new work is
// refused immediately with 503 + Retry-After, never queued.
func TestInFlightCapacity503(t *testing.T) {
	srv := New(Config{MaxInFlight: 1})
	srv.inflight <- struct{}{} // occupy the only slot
	w := postJSON(t, srv, "/run", testSpec(45))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated /run: code %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := srv.tel.Snapshot().Counters["serve.rejected.busy"]; got != 1 {
		t.Fatalf("serve.rejected.busy = %d, want 1", got)
	}
	<-srv.inflight
	if w := postJSON(t, srv, "/run", testSpec(45)); w.Code != http.StatusOK {
		t.Fatalf("freed /run: code %d, body %s", w.Code, w.Body.String())
	}
}
