package spec

import "math/bits"

// LaneVisits is the lockstep-engine form of VisitTracker and
// ConfinementTracker in one: it consumes per-node lane-occupancy words
// (bit l of occupied[v] = "some robot of lane l stands on node v") and
// maintains, per lane, exactly the quantities the scenario oracle reads —
// coverage, cover time, per-node revisit gaps, the visited-at-least-twice
// predicate, and the distinct-nodes-ever-visited count (which equals
// coverage: both are the cardinality of the ever-visited set).
//
// Most state is word-parallel (ever/twice/coverage words folded with
// OR/AND per node); only the revisit-gap bookkeeping iterates the set
// bits of each instant's occupancy, because gaps are genuinely per
// (node, lane) integers. Report(l, instants) reproduces the scalar
// VisitTracker.Report for lane l bit for bit — the differential tests in
// lanes_test.go drive both trackers with identical position streams and
// require equal reports.
type LaneVisits struct {
	n         int
	lastVisit []int32  // (node, lane) last visit instant, -1 if never; index v*64+l
	maxGap    []int32  // (node, lane) largest closed revisit gap
	ever      []uint64 // per node: lanes that ever visited it
	twice     []uint64 // per node: lanes that visited it at least twice
	complete  uint64   // lanes whose ever-set covers every node
	coverTime []int32  // per lane: first instant of full coverage
}

// NewLaneVisits creates a tracker; Reset arms it for a ring size.
func NewLaneVisits() *LaneVisits { return &LaneVisits{} }

// Reset re-arms the tracker for a fresh lockstep run over an n-node
// ring, reusing its backing storage — the pooling hook mirroring
// VisitTracker.Reset.
func (lv *LaneVisits) Reset(n int) {
	lv.n = n
	lv.lastVisit = resizeInt32s(lv.lastVisit, n*64)
	lv.maxGap = resizeInt32s(lv.maxGap, n*64)
	lv.ever = resizeWords(lv.ever, n)
	lv.twice = resizeWords(lv.twice, n)
	lv.complete = 0
	if lv.coverTime == nil {
		lv.coverTime = make([]int32, 64)
	}
	for i := range lv.lastVisit {
		lv.lastVisit[i] = -1
		lv.maxGap[i] = 0
	}
	for v := 0; v < n; v++ {
		lv.ever[v] = 0
		lv.twice[v] = 0
	}
	for l := range lv.coverTime {
		lv.coverTime[l] = -1
	}
}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Record folds the configuration of instant t into the tracker for every
// lane whose bit is set in mask (retired lanes pass mask 0 bits and are
// untouched). Instants must arrive in increasing order per lane, starting
// with the initial configuration at t = 0 — the same stream the scalar
// trackers observe via Before/After snapshots.
func (lv *LaneVisits) Record(t int, occupied []uint64, mask uint64) {
	if mask == 0 {
		return
	}
	t32 := int32(t)
	andAcc := ^uint64(0)
	for v := 0; v < lv.n; v++ {
		w := occupied[v] & mask
		if w != 0 {
			ever := lv.ever[v]
			// First visits: the wait from the start of the execution
			// counts as a gap (a node first visited at t waited t
			// instants). Repeat visits close a (t - lastVisit) gap and
			// certify the second visit.
			lv.twice[v] |= w & ever
			base := v << 6
			for b := w; b != 0; b &= b - 1 {
				l := bits.TrailingZeros64(b)
				idx := base + l
				if ever&(1<<uint(l)) == 0 {
					if t32 > lv.maxGap[idx] {
						lv.maxGap[idx] = t32
					}
				} else if g := t32 - lv.lastVisit[idx]; g > lv.maxGap[idx] {
					lv.maxGap[idx] = g
				}
				lv.lastVisit[idx] = t32
			}
			lv.ever[v] = ever | w
		}
		andAcc &= lv.ever[v]
	}
	// Lanes that just reached full coverage record this instant as their
	// cover time.
	newly := andAcc & mask &^ lv.complete
	for b := newly; b != 0; b &= b - 1 {
		lv.coverTime[bits.TrailingZeros64(b)] = t32
	}
	lv.complete |= newly
}

// Report summarizes lane l over the given number of observed instants,
// reproducing VisitTracker.Report for that lane exactly: open gaps reach
// the horizon, never-visited nodes count a full-horizon gap, and the
// worst node is the first one attaining the maximal gap in ascending
// node order.
//
// Visits is not materialized per node — per-lane exact counts are not
// tracked. It is nil when every node was visited at least twice (so
// MinVisits returns the horizon, ≥ 2 for any run of at least one round)
// and the single element {1} otherwise: exactly the information
// ExploreViolation's minVisits=2 threshold consumes, with the same
// rendered message (a covered node with fewer than two visits has
// exactly one).
func (lv *LaneVisits) Report(l, instants int) ExplorationReport {
	bit := uint64(1) << uint(l)
	rep := ExplorationReport{Nodes: lv.n, Horizon: instants, CoverTime: -1}
	if lv.complete&bit != 0 {
		rep.CoverTime = int(lv.coverTime[l])
	}
	allTwice := true
	for v := 0; v < lv.n; v++ {
		idx := v<<6 + l
		gap := int(lv.maxGap[idx])
		if lv.ever[v]&bit == 0 {
			gap = instants
			allTwice = false
		} else {
			rep.Covered++
			if lv.twice[v]&bit == 0 {
				allTwice = false
			}
			if open := instants - 1 - int(lv.lastVisit[idx]); open > gap {
				gap = open
			}
		}
		if gap > rep.MaxGap {
			rep.MaxGap = gap
			rep.WorstNode = v
		}
	}
	if !allTwice {
		rep.Visits = []int{1}
	}
	return rep
}

// Distinct returns lane l's count of distinct nodes ever visited — the
// quantity the confinement theorems bound, identical to
// ConfinementTracker.Distinct over the same stream (both count the
// ever-visited set).
func (lv *LaneVisits) Distinct(l int) int {
	bit := uint64(1) << uint(l)
	d := 0
	for v := 0; v < lv.n; v++ {
		if lv.ever[v]&bit != 0 {
			d++
		}
	}
	return d
}
