package spec

import (
	"testing"

	"pef/internal/fsync"
	"pef/internal/prng"
)

// TestLaneVisitsMatchesScalarTrackers drives LaneVisits and the scalar
// VisitTracker/ConfinementTracker with identical random position streams
// (staggered per-lane horizons included) and requires identical reports —
// including the ExploreViolation strings the oracle ultimately consumes.
func TestLaneVisitsMatchesScalarTrackers(t *testing.T) {
	src := prng.NewSource(0xA11CE)
	lv := NewLaneVisits()
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.Intn(14)
		k := 1 + src.Intn(3)
		lanes := 1 + src.Intn(64)
		baseRounds := 1 + src.Intn(40)

		pos := make([][]int, lanes)
		vts := make([]*VisitTracker, lanes)
		cts := make([]*ConfinementTracker, lanes)
		rounds := make([]int, lanes)
		maxRounds := 0
		for l := range pos {
			pos[l] = make([]int, k)
			for i := range pos[l] {
				pos[l][i] = src.Intn(n)
			}
			vts[l] = NewVisitTracker(n)
			cts[l] = NewConfinementTracker()
			rounds[l] = baseRounds + l%3
			if rounds[l] > maxRounds {
				maxRounds = rounds[l]
			}
		}

		lv.Reset(n)
		occ := make([]uint64, n)
		buildOcc := func(mask uint64) {
			for v := range occ {
				occ[v] = 0
			}
			for l := range pos {
				if mask&(1<<uint(l)) == 0 {
					continue
				}
				for _, v := range pos[l] {
					occ[v] |= 1 << uint(l)
				}
			}
		}
		allMask := uint64(1)<<uint(lanes) - 1
		if lanes == 64 {
			allMask = ^uint64(0)
		}
		buildOcc(allMask)
		lv.Record(0, occ, allMask)

		for instant := 1; instant <= maxRounds; instant++ {
			var mask uint64
			for l := range pos {
				if rounds[l] < instant {
					continue
				}
				mask |= 1 << uint(l)
				prev := append([]int(nil), pos[l]...)
				for i := range pos[l] {
					pos[l][i] = (pos[l][i] + src.Intn(3) - 1 + n) % n
				}
				ev := fsync.RoundEvent{
					Before: fsync.Snapshot{T: instant - 1, Positions: prev},
					After:  fsync.Snapshot{T: instant, Positions: append([]int(nil), pos[l]...)},
				}
				vts[l].ObserveRound(ev)
				cts[l].ObserveRound(ev)
			}
			buildOcc(mask)
			lv.Record(instant, occ, mask)
		}

		for l := range pos {
			want := vts[l].Report()
			got := lv.Report(l, rounds[l]+1)
			if got.Nodes != want.Nodes || got.Horizon != want.Horizon ||
				got.Covered != want.Covered || got.CoverTime != want.CoverTime ||
				got.MaxGap != want.MaxGap || got.WorstNode != want.WorstNode {
				t.Fatalf("trial %d lane %d (n=%d k=%d rounds=%d):\nlane   %+v\nscalar %+v",
					trial, l, n, k, rounds[l], got, want)
			}
			for _, bound := range []int{0, want.MaxGap, want.Horizon} {
				if g, w := got.ExploreViolation(2, bound), want.ExploreViolation(2, bound); g != w {
					t.Fatalf("trial %d lane %d bound %d: lane violation %q, scalar %q", trial, l, bound, g, w)
				}
			}
			if g, w := lv.Distinct(l), cts[l].Distinct(); g != w {
				t.Fatalf("trial %d lane %d: lane distinct %d, confinement tracker %d", trial, l, g, w)
			}
			if g, w := lv.Distinct(l), want.Covered; g != w {
				t.Fatalf("trial %d lane %d: distinct %d != covered %d", trial, l, g, w)
			}
		}
	}
}

// TestLaneVisitsRecordAllocFree pins the per-round tracker cost: recording
// an instant must not allocate.
func TestLaneVisitsRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const n = 12
	lv := NewLaneVisits()
	lv.Reset(n)
	occ := make([]uint64, n)
	for v := range occ {
		occ[v] = 0xDEADBEEFCAFE1234 >> uint(v%8)
	}
	instant := 0
	if allocs := testing.AllocsPerRun(200, func() {
		lv.Record(instant, occ, ^uint64(0))
		instant++
	}); allocs != 0 {
		t.Fatalf("LaneVisits.Record allocates %.1f times per instant, want 0", allocs)
	}
}
