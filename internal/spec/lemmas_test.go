package spec

// Mechanism-fidelity tests: the intermediate lemmas of Section 3 of the
// paper, checked as runtime behaviour of PEF_3+ on crafted instances (the
// end-to-end theorems are covered by the harness; these tests pin down the
// internal mechanics the proofs rely on).

import (
	"testing"

	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// towerCounter counts rounds whose configuration contains a tower, split
// around a time threshold.
type towerCounter struct {
	threshold    int
	before, from int
}

func (tc *towerCounter) ObserveRound(ev fsync.RoundEvent) {
	if len(ev.Before.Towers()) == 0 {
		return
	}
	if ev.T < tc.threshold {
		tc.before++
	} else {
		tc.from++
	}
}

// Lemma 3.1: with an eventual missing edge, at least one tower forms.
// Instance: three robots with identical chirality on a static ring never
// meet; once edge 0 disappears forever they must pile up.
func TestLemma31TowerFormsAfterEventualMissing(t *testing.T) {
	const n, from = 8, 40
	g := dyngraph.NewEventualMissing(dyngraph.NewStatic(n), 0, from)
	tc := &towerCounter{threshold: from}
	sim, err := fsync.New(fsync.Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   fsync.Oblivious{G: g},
		Placements: fsync.EvenPlacements(n, 3),
		Observers:  []fsync.Observer{tc},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(600)
	if tc.before != 0 {
		t.Fatalf("same-chirality robots met on the static prefix (%d tower rounds)", tc.before)
	}
	if tc.from == 0 {
		t.Fatal("no tower formed after the edge disappeared (Lemma 3.1)")
	}
}

// Lemma 3.2 (contrapositive reading): an execution without towers explores
// every node. Instance: same-chirality robots on a static ring — no tower
// ever forms, and all nodes are visited infinitely often.
func TestLemma32TowerFreeExecutionExplores(t *testing.T) {
	const n = 9
	vt := NewVisitTracker(n)
	tc := &towerCounter{threshold: 1 << 30}
	sim, err := fsync.New(fsync.Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   fsync.Oblivious{G: dyngraph.NewStatic(n)},
		Placements: fsync.EvenPlacements(n, 3),
		Observers:  []fsync.Observer{vt, tc},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(300)
	if tc.before != 0 {
		t.Fatal("towers formed in the tower-free instance")
	}
	rep := vt.Report()
	if rep.Covered != n || rep.MaxGap > n+1 {
		t.Fatalf("tower-free execution does not explore: %s", rep)
	}
}

// Lemma 3.5: no eventual missing edge + towers still explores. Instance:
// opposite-chirality robots on a static ring meet head-on, break the tower,
// and keep exploring.
func TestLemma35TowersOnRecurrentRingStillExplore(t *testing.T) {
	const n = 8
	vt := NewVisitTracker(n)
	ti := NewTowerInvariants()
	tc := &towerCounter{threshold: 0}
	sim, err := fsync.New(fsync.Config{
		Algorithm: core.PEF3Plus{},
		Dynamics:  fsync.Oblivious{G: dyngraph.NewStatic(n)},
		Placements: []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 3, Chirality: robot.RightIsCCW},
			{Node: 5, Chirality: robot.RightIsCW},
		},
		Observers: []fsync.Observer{vt, ti, tc},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(400)
	if tc.from == 0 {
		t.Fatal("instance was supposed to produce towers")
	}
	if !ti.OK() {
		t.Fatalf("tower invariants violated: %v", ti.Violations())
	}
	rep := vt.Report()
	if rep.Covered != n || rep.MaxGap > 4*n {
		t.Fatalf("exploration with towers failed: %s", rep)
	}
}

// Lemma 3.7 corollary, directional: after stabilization the two sentinels
// stand exactly on the extremities of the missing edge, pointing at it.
func TestLemma37SentinelsOnExtremities(t *testing.T) {
	const n, edge, from = 8, 3, 24
	r := ring.New(n)
	g := dyngraph.NewEventualMissing(
		dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.8, 11), 4, 12), edge, from)
	watch := NewSentinelWatch(r, edge, from)
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   fsync.Oblivious{G: g},
		Placements: fsync.EvenPlacements(n, 3),
		Observers:  []fsync.Observer{watch, rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1600)
	rep := watch.Report()
	if !rep.Stabilized {
		t.Fatalf("sentinels never stabilized: %+v", rep)
	}
	// At the last recorded instant, the extremities of the missing edge
	// must both carry a robot pointing at it.
	last := rec.At(rec.Len() - 1)
	u, v := r.EdgeEndpoints(edge)
	foundU, foundV := false, false
	for i, p := range last.Positions {
		if p == u && last.GlobalDirs[i] == ring.CW {
			foundU = true
		}
		if p == v && last.GlobalDirs[i] == ring.CCW {
			foundV = true
		}
	}
	if !foundU || !foundV {
		t.Fatalf("extremities not both posted at the horizon: %v / %v", last.Positions, last.GlobalDirs)
	}
}

// Theorem 4.2 mechanics: on the 3-node ring, a PEF_2 tower breaks in
// finite time (the proof's "any tower is broken in finite time").
func TestPEF2TowersBreak(t *testing.T) {
	const n = 3
	// Force a tower: opposite chirality robots adjacent, walking towards
	// the same node on a static triangle.
	towerAt := -1
	brokenAt := -1
	ob := fsync.ObserverFunc(func(ev fsync.RoundEvent) {
		if len(ev.After.Towers()) > 0 && towerAt < 0 {
			towerAt = ev.T + 1
		}
		if towerAt >= 0 && brokenAt < 0 && len(ev.After.Towers()) == 0 {
			brokenAt = ev.T + 1
		}
	})
	sim, err := fsync.New(fsync.Config{
		Algorithm: core.PEF2{},
		Dynamics:  fsync.Oblivious{G: dyngraph.NewStatic(n)},
		Placements: []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},  // dir left -> global CCW
			{Node: 1, Chirality: robot.RightIsCCW}, // dir left -> global CW
		},
		Observers: []fsync.Observer{ob},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60)
	if towerAt < 0 {
		t.Fatal("head-on robots on a triangle must form a tower")
	}
	if brokenAt < 0 {
		t.Fatalf("tower formed at %d never broke", towerAt)
	}
}
