//go:build !race

package spec

const raceEnabled = false
