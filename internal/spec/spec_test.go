package spec

import (
	"strings"
	"testing"

	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// event fabricates a RoundEvent transitioning between two position vectors
// at round t, with the given post-Compute global directions.
func event(t int, n int, before, after []int, dirsAfter []ring.Direction) fsync.RoundEvent {
	mk := func(tt int, pos []int, dirs []ring.Direction) fsync.Snapshot {
		s := fsync.Snapshot{
			T:          tt,
			Positions:  append([]int(nil), pos...),
			GlobalDirs: make([]ring.Direction, len(pos)),
			States:     make([]robot.StateCode, len(pos)),
			MovedPrev:  make([]bool, len(pos)),
		}
		for i := range s.GlobalDirs {
			s.GlobalDirs[i] = ring.CW
			if dirs != nil {
				s.GlobalDirs[i] = dirs[i]
			}
		}
		return s
	}
	return fsync.RoundEvent{
		T:      t,
		Edges:  ring.FullEdgeSet(n),
		Before: mk(t, before, nil),
		After:  mk(t+1, after, dirsAfter),
		Moved:  make([]bool, len(before)),
	}
}

func TestVisitTrackerCoverAndGaps(t *testing.T) {
	vt := NewVisitTracker(4)
	// Robot sweeps 0,1,2,3 then sits on 3.
	positions := [][]int{{0}, {1}, {2}, {3}, {3}, {3}}
	for i := 0; i+1 < len(positions); i++ {
		vt.ObserveRound(event(i, 4, positions[i], positions[i+1], nil))
	}
	rep := vt.Report()
	if rep.Covered != 4 || rep.CoverTime != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Horizon != 6 {
		t.Fatalf("horizon = %d", rep.Horizon)
	}
	// Node 0 was seen at t=0 only: open gap reaches horizon-1 = 5.
	if rep.MaxGap != 5 || rep.WorstNode != 0 {
		t.Fatalf("gap = %d at node %d", rep.MaxGap, rep.WorstNode)
	}
	if rep.Visits[3] != 3 {
		t.Fatalf("visits = %v", rep.Visits)
	}
	if rep.PerpetuallyExplored(4) {
		t.Fatal("open gap of 5 must fail bound 4")
	}
	if !strings.Contains(rep.String(), "explored 4/4") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestVisitTrackerTowerCountsOnce(t *testing.T) {
	vt := NewVisitTracker(3)
	vt.ObserveRound(event(0, 3, []int{1, 1}, []int{1, 1}, nil))
	rep := vt.Report()
	if rep.Visits[1] != 2 { // t=0 and t=1, one per instant despite 2 robots
		t.Fatalf("visits = %v", rep.Visits)
	}
}

func TestVisitTrackerNeverVisited(t *testing.T) {
	vt := NewVisitTracker(3)
	vt.ObserveRound(event(0, 3, []int{0}, []int{0}, nil))
	rep := vt.Report()
	if rep.Covered != 1 || rep.CoverTime != -1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MaxGap != rep.Horizon {
		t.Fatalf("unvisited node gap = %d, want horizon %d", rep.MaxGap, rep.Horizon)
	}
}

func TestConfinementTracker(t *testing.T) {
	ct := NewConfinementTracker()
	ct.ObserveRound(event(0, 8, []int{0, 1}, []int{1, 2}, nil))
	ct.ObserveRound(event(1, 8, []int{1, 2}, []int{0, 1}, nil))
	if ct.Distinct() != 3 || !ct.ConfinedTo(3) || ct.ConfinedTo(2) {
		t.Fatalf("distinct = %d", ct.Distinct())
	}
	nodes := ct.VisitedNodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
	series := ct.Series()
	if series[0] != 2 || series[len(series)-1] != 3 {
		t.Fatalf("series = %v", series)
	}
}

func TestTowerInvariantsLemma34Violation(t *testing.T) {
	ti := NewTowerInvariants()
	// Three robots on one node: Lemma 3.4 violation.
	ti.ObserveRound(event(4, 5, []int{2, 2, 2}, []int{2, 2, 2}, nil))
	if ti.OK() {
		t.Fatal("triple tower accepted")
	}
	if ti.MaxTowerSize() != 3 || ti.TowerRounds() != 1 {
		t.Fatalf("size=%d rounds=%d", ti.MaxTowerSize(), ti.TowerRounds())
	}
	if !strings.Contains(ti.Violations()[0], "Lemma 3.4") {
		t.Fatalf("violation text: %v", ti.Violations())
	}
}

func TestTowerInvariantsLemma33(t *testing.T) {
	// Two co-located robots with equal directions after Compute: violation.
	ti := NewTowerInvariants()
	ti.ObserveRound(event(2, 5, []int{1, 1}, []int{1, 1}, []ring.Direction{ring.CW, ring.CW}))
	if ti.OK() {
		t.Fatal("same-direction tower accepted")
	}
	// Opposite directions: fine.
	ti2 := NewTowerInvariants()
	ti2.ObserveRound(event(2, 5, []int{1, 1}, []int{1, 1}, []ring.Direction{ring.CW, ring.CCW}))
	if !ti2.OK() {
		t.Fatalf("opposite-direction tower rejected: %v", ti2.Violations())
	}
}

func TestTowerInvariantsCapsViolations(t *testing.T) {
	ti := NewTowerInvariants()
	ti.MaxViolations = 2
	for i := 0; i < 5; i++ {
		ti.ObserveRound(event(i, 5, []int{1, 1, 1}, []int{1, 1, 1}, nil))
	}
	if len(ti.Violations()) != 2 {
		t.Fatalf("violations not capped: %d", len(ti.Violations()))
	}
}

func TestSentinelWatchStabilizes(t *testing.T) {
	r := ring.New(5)
	// Edge 2 joins nodes 2 and 3: the sentinel on 2 points CW, on 3 CCW.
	sw := NewSentinelWatch(r, 2, 3)
	bad := []ring.Direction{ring.CW, ring.CW}
	good := []ring.Direction{ring.CW, ring.CCW}
	mk := func(t int, pos []int, dirs []ring.Direction) fsync.RoundEvent {
		ev := event(t, 5, pos, pos, dirs)
		// Pre-round snapshot needs the same dirs for the check.
		ev.Before.GlobalDirs = append([]ring.Direction(nil), dirs...)
		return ev
	}
	// Round 0 carries bad directions on both its snapshots (t=0 and t=1);
	// rounds 1 and 2 are good, so the condition holds from t=2 on.
	sw.ObserveRound(mk(0, []int{2, 3}, bad))
	sw.ObserveRound(mk(1, []int{2, 3}, good))
	sw.ObserveRound(mk(2, []int{2, 3}, good))
	rep := sw.Report()
	if !rep.Stabilized {
		t.Fatalf("not stabilized: %+v", rep)
	}
	if rep.StableFrom != 2 {
		t.Fatalf("stable from %d, want 2", rep.StableFrom)
	}
	if !strings.Contains(rep.String(), "stable from") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestSentinelWatchNeverStable(t *testing.T) {
	r := ring.New(5)
	sw := NewSentinelWatch(r, 2, 3)
	ev := event(0, 5, []int{0, 1}, []int{0, 1}, nil)
	sw.ObserveRound(ev)
	rep := sw.Report()
	if rep.Stabilized {
		t.Fatal("empty extremities reported stable")
	}
	if !strings.Contains(rep.String(), "not stabilized") {
		t.Fatalf("String = %q", rep.String())
	}
}
