package spec

import (
	"fmt"

	"pef/internal/fsync"
	"pef/internal/ring"
)

// TowerInvariants checks, on every round, the two structural lemmas that
// drive the correctness proof of PEF_3+:
//
//	Lemma 3.4: no configuration of a well-initiated execution contains a
//	           tower of 3 or more robots.
//	Lemma 3.3: while a 2-robot tower exists, its robots consider opposite
//	           global directions (checked after the Compute phase of every
//	           round during which the tower exists).
//
// Violations are collected (capped) rather than fatal, so tests can assert
// emptiness and ablation experiments can count them.
type TowerInvariants struct {
	// MaxViolations caps the retained violation list (default 32).
	MaxViolations int

	violations []string
	towerRound int // rounds during which at least one tower existed
	maxSize    int // largest tower seen
}

// NewTowerInvariants returns a checker with the default cap.
func NewTowerInvariants() *TowerInvariants {
	return &TowerInvariants{MaxViolations: 32}
}

// ObserveRound implements fsync.Observer.
func (ti *TowerInvariants) ObserveRound(ev fsync.RoundEvent) {
	towers := ev.Before.Towers()
	if len(towers) > 0 {
		ti.towerRound++
	}
	for _, tw := range towers {
		if len(tw.Robots) > ti.maxSize {
			ti.maxSize = len(tw.Robots)
		}
		if len(tw.Robots) >= 3 {
			ti.violate("t=%d: tower of %d robots on node %d (Lemma 3.4)", ev.T, len(tw.Robots), tw.Node)
			continue
		}
		// Lemma 3.3: after the Compute phase of this round the two robots
		// must consider opposite global directions. Directions after
		// Compute are the After snapshot's (Move does not change dir).
		a, b := tw.Robots[0], tw.Robots[1]
		da, db := ev.After.GlobalDirs[a], ev.After.GlobalDirs[b]
		if da == db {
			ti.violate("t=%d: tower robots %d,%d on node %d both consider %s after Compute (Lemma 3.3)",
				ev.T, a, b, tw.Node, da)
		}
	}
}

func (ti *TowerInvariants) violate(format string, args ...interface{}) {
	cap := ti.MaxViolations
	if cap == 0 {
		cap = 32
	}
	if len(ti.violations) < cap {
		ti.violations = append(ti.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the collected violation descriptions.
func (ti *TowerInvariants) Violations() []string {
	return append([]string(nil), ti.violations...)
}

// OK reports whether no violation occurred.
func (ti *TowerInvariants) OK() bool { return len(ti.violations) == 0 }

// TowerRounds returns the number of rounds during which a tower existed.
func (ti *TowerInvariants) TowerRounds() int { return ti.towerRound }

// MaxTowerSize returns the largest tower multiplicity observed.
func (ti *TowerInvariants) MaxTowerSize() int { return ti.maxSize }

// SentinelWatch detects the stabilization of Lemma 3.7: when the dynamics
// has an eventual missing edge e (absent forever from MissingFrom), the
// lemma states that eventually one robot is located forever at each
// extremity of e, pointing at e. The watch finds the earliest suffix start
// from which both extremities are continuously occupied by robots pointing
// at e.
type SentinelWatch struct {
	r           ring.Ring
	edge        int
	missingFrom int

	// lastBad is the last instant at which the sentinel condition did not
	// hold; the condition holds on the suffix (lastBad, horizon).
	lastBad int
	horizon int
}

// NewSentinelWatch watches edge (absent from missingFrom on) on ring r.
func NewSentinelWatch(r ring.Ring, edge, missingFrom int) *SentinelWatch {
	return &SentinelWatch{r: r, edge: edge, missingFrom: missingFrom, lastBad: -1}
}

// ObserveRound implements fsync.Observer.
func (sw *SentinelWatch) ObserveRound(ev fsync.RoundEvent) {
	sw.check(ev.Before)
	sw.check(ev.After)
}

func (sw *SentinelWatch) check(snap fsync.Snapshot) {
	if snap.T+1 > sw.horizon {
		sw.horizon = snap.T + 1
	}
	u, v := sw.r.EdgeEndpoints(sw.edge)
	// A sentinel on u points at the missing edge: the global direction from
	// u towards the edge.
	okU := sw.sentinelOn(snap, u, ring.CW) // edge e is the CW edge of u=e
	okV := sw.sentinelOn(snap, v, ring.CCW)
	if !(okU && okV) {
		if snap.T > sw.lastBad {
			sw.lastBad = snap.T
		}
	}
}

// sentinelOn reports whether some robot stands on node and points in the
// global direction d (towards the watched edge).
func (sw *SentinelWatch) sentinelOn(snap fsync.Snapshot, node int, d ring.Direction) bool {
	for i, p := range snap.Positions {
		if p == node && snap.GlobalDirs[i] == d {
			return true
		}
	}
	return false
}

// Report returns the sentinel verdict at the current horizon.
func (sw *SentinelWatch) Report() SentinelReport {
	rep := SentinelReport{
		Edge:        sw.edge,
		MissingFrom: sw.missingFrom,
		Horizon:     sw.horizon,
	}
	if sw.lastBad < sw.horizon-1 {
		rep.Stabilized = true
		rep.StableFrom = sw.lastBad + 1
	}
	return rep
}

// SentinelReport is the Lemma 3.7 verdict.
type SentinelReport struct {
	// Edge is the watched eventual missing edge.
	Edge int
	// MissingFrom is the instant from which the edge is absent forever.
	MissingFrom int
	// Horizon is the number of observed instants.
	Horizon int
	// Stabilized reports that a suffix exists on which both extremities
	// are continuously occupied by robots pointing at the edge.
	Stabilized bool
	// StableFrom is the first instant of that suffix.
	StableFrom int
}

// String implements fmt.Stringer.
func (r SentinelReport) String() string {
	if !r.Stabilized {
		return fmt.Sprintf("sentinels on edge %d: not stabilized within horizon %d", r.Edge, r.Horizon)
	}
	return fmt.Sprintf("sentinels on edge %d: stable from t=%d (edge missing from %d, horizon %d)",
		r.Edge, r.StableFrom, r.MissingFrom, r.Horizon)
}
