// Package spec turns the paper's specifications into finite-horizon
// checkers:
//
//   - the perpetual exploration specification of Section 2.4 (every node
//     infinitely often visited), verified on prefixes via cover times,
//     per-node revisit gaps and windowed cover checks;
//   - confinement (the quantity bounded by the impossibility proofs:
//     the set of nodes ever visited);
//   - the structural tower invariants of Lemmas 3.3 and 3.4;
//   - the sentinel formation property of Lemma 3.7.
//
// All checkers are fsync.Observers: attach them to a simulator and read the
// report afterwards.
package spec

import (
	"fmt"

	"pef/internal/fsync"
)

// VisitTracker records node visits. A node is visited at instant t when a
// robot is located at it in configuration γ_t; the initial configuration
// counts (the specification speaks of locations over the whole execution).
type VisitTracker struct {
	n         int
	horizon   int
	visits    []int // total visits per node
	lastVisit []int // last instant each node was visited, -1 if never
	maxGap    []int // largest revisit gap per node observed so far
	coverTime int   // first instant at which every node had been visited
	covered   int   // number of nodes visited at least once
	primed    bool  // initial configuration recorded
}

// NewVisitTracker creates a tracker for an n-node ring.
func NewVisitTracker(n int) *VisitTracker {
	vt := &VisitTracker{}
	vt.Reset(n)
	return vt
}

// Reset re-arms the tracker for a fresh run over an n-node ring, reusing
// its backing slices where capacities allow — the pooling hook for
// million-scenario campaigns.
func (vt *VisitTracker) Reset(n int) {
	vt.n = n
	vt.horizon = 0
	vt.coverTime = -1
	vt.covered = 0
	vt.primed = false
	vt.visits = resizeInts(vt.visits, n)
	vt.lastVisit = resizeInts(vt.lastVisit, n)
	vt.maxGap = resizeInts(vt.maxGap, n)
	for i := 0; i < n; i++ {
		vt.visits[i] = 0
		vt.lastVisit[i] = -1
		vt.maxGap[i] = 0
	}
}

// resizeInts returns a slice of length n reusing s's backing array when
// possible.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// ObserveRound implements fsync.Observer.
func (vt *VisitTracker) ObserveRound(ev fsync.RoundEvent) {
	if !vt.primed {
		vt.recordConfig(ev.Before)
		vt.primed = true
	}
	vt.recordConfig(ev.After)
}

func (vt *VisitTracker) recordConfig(snap fsync.Snapshot) {
	vt.horizon = snap.T + 1
	for pi, node := range snap.Positions {
		// Count each node once per instant even when a tower stands on it
		// (k is tiny, so the quadratic rescan beats a per-round set).
		dup := false
		for _, prev := range snap.Positions[:pi] {
			if prev == node {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if vt.lastVisit[node] < 0 {
			vt.covered++
			if vt.covered == vt.n && vt.coverTime < 0 {
				vt.coverTime = snap.T
			}
			// The gap from the start of the execution counts: a node first
			// visited at t waited t instants.
			if snap.T > vt.maxGap[node] {
				vt.maxGap[node] = snap.T
			}
		} else if gap := snap.T - vt.lastVisit[node]; gap > vt.maxGap[node] {
			vt.maxGap[node] = gap
		}
		vt.lastVisit[node] = snap.T
		vt.visits[node]++
	}
}

// Report summarizes the tracker at the current horizon.
func (vt *VisitTracker) Report() ExplorationReport {
	rep := ExplorationReport{
		Nodes:     vt.n,
		Horizon:   vt.horizon,
		CoverTime: vt.coverTime,
		Covered:   vt.covered,
		Visits:    append([]int(nil), vt.visits...),
	}
	for node := 0; node < vt.n; node++ {
		gap := vt.maxGap[node]
		// A node not seen since lastVisit has an open gap reaching the
		// horizon; count it — perpetual exploration must keep revisiting.
		if vt.lastVisit[node] < 0 {
			gap = vt.horizon
		} else if open := vt.horizon - 1 - vt.lastVisit[node]; open > gap {
			gap = open
		}
		if gap > rep.MaxGap {
			rep.MaxGap = gap
			rep.WorstNode = node
		}
	}
	return rep
}

// ExplorationReport is the finite-horizon verdict on the perpetual
// exploration specification.
type ExplorationReport struct {
	// Nodes is the ring size.
	Nodes int
	// Horizon is the number of observed instants.
	Horizon int
	// Covered is how many distinct nodes were visited at least once.
	Covered int
	// CoverTime is the first instant at which all nodes had been visited
	// (-1 if never).
	CoverTime int
	// MaxGap is the largest revisit gap over all nodes, counting the open
	// gap at the end of the horizon and the initial wait before first
	// visit.
	MaxGap int
	// WorstNode attains MaxGap.
	WorstNode int
	// Visits is the per-node visit count.
	Visits []int
}

// PerpetuallyExplored applies the finite-horizon acceptance criterion: all
// nodes covered and every revisit gap at most gapBound. Passing for a
// gapBound that stays constant as the horizon grows is the empirical
// signature of perpetual exploration.
func (r ExplorationReport) PerpetuallyExplored(gapBound int) bool {
	return r.Covered == r.Nodes && r.CoverTime >= 0 && r.MaxGap <= gapBound
}

// MinVisits returns the smallest per-node visit count.
func (r ExplorationReport) MinVisits() int {
	min := r.Horizon
	for _, v := range r.Visits {
		if v < min {
			min = v
		}
	}
	return min
}

// ExploreViolation is the message-producing form of the full acceptance
// criterion shared by the possibility experiments and the scenario oracle:
// full coverage, every node visited at least minVisits times (the ring
// keeps being re-explored), and every revisit gap at most gapBound. It
// describes the first failure, or returns "" when the criterion holds.
func (r ExplorationReport) ExploreViolation(minVisits, gapBound int) string {
	if r.Covered != r.Nodes || r.CoverTime < 0 {
		return fmt.Sprintf("covered %d/%d nodes", r.Covered, r.Nodes)
	}
	if mv := r.MinVisits(); mv < minVisits {
		return fmt.Sprintf("a node was visited only %d time(s); the ring is not being re-explored", mv)
	}
	if r.MaxGap > gapBound {
		return fmt.Sprintf("max revisit gap %d exceeds bound %d (node %d)", r.MaxGap, gapBound, r.WorstNode)
	}
	return ""
}

// String implements fmt.Stringer.
func (r ExplorationReport) String() string {
	return fmt.Sprintf("explored %d/%d nodes, cover=%d, maxGap=%d (node %d), horizon=%d",
		r.Covered, r.Nodes, r.CoverTime, r.MaxGap, r.WorstNode, r.Horizon)
}

// ConfinementTracker records the set of nodes ever visited and its growth
// over time — the quantity the impossibility theorems bound (two robots
// never leave {u, v, w}; one robot never leaves {u, v}).
type ConfinementTracker struct {
	visited map[int]bool
	series  []int // distinct-visited count after each instant
	primed  bool
}

// NewConfinementTracker creates an empty tracker.
func NewConfinementTracker() *ConfinementTracker {
	return &ConfinementTracker{visited: make(map[int]bool)}
}

// Reset re-arms the tracker for a fresh run, reusing the visited map and
// series storage.
func (ct *ConfinementTracker) Reset() {
	clear(ct.visited)
	ct.series = ct.series[:0]
	ct.primed = false
}

// ObserveRound implements fsync.Observer.
func (ct *ConfinementTracker) ObserveRound(ev fsync.RoundEvent) {
	if !ct.primed {
		ct.record(ev.Before)
		ct.primed = true
	}
	ct.record(ev.After)
}

func (ct *ConfinementTracker) record(snap fsync.Snapshot) {
	for _, node := range snap.Positions {
		ct.visited[node] = true
	}
	ct.series = append(ct.series, len(ct.visited))
}

// Distinct returns the number of distinct nodes ever visited.
func (ct *ConfinementTracker) Distinct() int { return len(ct.visited) }

// VisitedNodes returns the visited nodes in increasing order.
func (ct *ConfinementTracker) VisitedNodes() []int {
	out := make([]int, 0, len(ct.visited))
	for n := 0; n < 1<<31; n++ {
		if len(out) == len(ct.visited) {
			break
		}
		if ct.visited[n] {
			out = append(out, n)
		}
	}
	return out
}

// Series returns the distinct-visited counts after each observed instant.
func (ct *ConfinementTracker) Series() []int {
	return append([]int(nil), ct.series...)
}

// ConfinedTo reports whether the walkers never visited more than limit
// distinct nodes.
func (ct *ConfinementTracker) ConfinedTo(limit int) bool {
	return len(ct.visited) <= limit
}
