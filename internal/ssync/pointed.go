package ssync

import (
	"fmt"

	"pef/internal/ring"
	"pef/internal/robot"
)

// PointedEdgeAdversary is the constructive form of the Di Luna et al.
// argument: "wake up each robot independently and remove the edge that the
// robot wants to traverse at this time". Deciding which edge the robot
// *wants* requires predicting its Compute phase, which depends on the very
// edge set being chosen — a fixed-point problem. Because the algorithm is
// deterministic and the adversary knows it, the adversary maintains a
// shadow replay of every robot's view history and evaluates candidate edge
// sets:
//
//  1. remove only the activated robot's clockwise adjacent edge,
//  2. remove only its counter-clockwise adjacent edge,
//  3. remove both (always a fixed point: the robot cannot move whichever
//     way it points).
//
// A candidate is chosen iff the robot's post-Compute direction points at a
// removed edge. Candidates 1 and 2 keep every snapshot connected; the
// fallback 3 is needed against algorithms that chase whichever edge is
// present (e.g. bounce-on-missing). Either way no robot ever moves while
// every edge keeps reappearing — exploration fails on a legal
// connected-over-time ring.
//
// The adversary supports one-at-a-time activation schedules (RoundRobin);
// richer schedules would need joint fixed points, which [10] does not
// require.
type PointedEdgeAdversary struct {
	r         ring.Ring
	alg       robot.Algorithm
	chirs     []robot.Chirality
	histories [][]robot.View
	// bothRemovals counts activations that needed the remove-both
	// fallback, for reporting.
	bothRemovals int
	// singleRemovals counts activations handled by a single-edge removal.
	singleRemovals int
}

// NewPointedEdgeAdversary builds the adversary for an n-node ring against
// the given uniform algorithm with the robots' chiralities (indexed as in
// the simulator's configuration).
func NewPointedEdgeAdversary(n int, alg robot.Algorithm, chirs []robot.Chirality) *PointedEdgeAdversary {
	return &PointedEdgeAdversary{
		r:         ring.New(n),
		alg:       alg,
		chirs:     append([]robot.Chirality(nil), chirs...),
		histories: make([][]robot.View, len(chirs)),
	}
}

// Ring implements Dynamics.
func (a *PointedEdgeAdversary) Ring() ring.Ring { return a.r }

// SingleRemovals returns how many activations were blocked by removing a
// single edge (connected snapshot).
func (a *PointedEdgeAdversary) SingleRemovals() int { return a.singleRemovals }

// BothRemovals returns how many activations needed both adjacent edges
// removed.
func (a *PointedEdgeAdversary) BothRemovals() int { return a.bothRemovals }

// replay reconstructs robot i's current core by replaying its view history
// into a fresh core — legitimate adversary power: the algorithm is
// deterministic and public.
func (a *PointedEdgeAdversary) replay(i int) robot.Core {
	core := a.alg.NewCore()
	for _, v := range a.histories[i] {
		core.Compute(v)
	}
	return core
}

// globalDir maps robot i's local dir to a global direction.
func (a *PointedEdgeAdversary) globalDir(i int, d robot.LocalDir) ring.Direction {
	if a.chirs[i].GlobalSign(d) > 0 {
		return ring.CW
	}
	return ring.CCW
}

// viewFor computes the view robot i would gather on edges, standing at pos
// with the pre-Compute direction dir.
func (a *PointedEdgeAdversary) viewFor(i, pos int, dir robot.LocalDir, edges ring.EdgeSet, occupied bool) robot.View {
	pointed := a.globalDir(i, dir)
	return robot.View{
		EdgeDir:     edges.Contains(a.r.EdgeTowards(pos, pointed)),
		EdgeOpp:     edges.Contains(a.r.EdgeTowards(pos, pointed.Opposite())),
		OtherRobots: occupied,
	}
}

// EdgesAt implements Dynamics. It panics on multi-robot activations, which
// this adversary does not support.
func (a *PointedEdgeAdversary) EdgesAt(t int, positions []int, active []int) ring.EdgeSet {
	full := ring.FullEdgeSet(a.r.Edges())
	if len(active) == 0 {
		return full
	}
	if len(active) > 1 {
		panic(fmt.Sprintf("ssync: pointed-edge adversary needs one-at-a-time activation, got %d at t=%d", len(active), t))
	}
	i := active[0]
	pos := positions[i]
	occupied := false
	for j, p := range positions {
		if j != i && p == pos {
			occupied = true
		}
	}
	cw := a.r.EdgeTowards(pos, ring.CW)
	ccw := a.r.EdgeTowards(pos, ring.CCW)

	candidates := []ring.EdgeSet{
		full.Without(cw),
		full.Without(ccw),
		full.Without(cw, ccw),
	}
	for ci, cand := range candidates {
		shadow := a.replay(i)
		view := a.viewFor(i, pos, shadow.Dir(), cand, occupied)
		shadow.Compute(view)
		moveEdge := a.r.EdgeTowards(pos, a.globalDir(i, shadow.Dir()))
		if cand.Contains(moveEdge) {
			continue // the robot would still move: not a fixed point
		}
		// Commit: this is the view the simulator will deliver.
		a.histories[i] = append(a.histories[i], view)
		if ci < 2 {
			a.singleRemovals++
		} else {
			a.bothRemovals++
		}
		return cand
	}
	// Unreachable: removing both adjacent edges always blocks the robot.
	panic("ssync: no fixed point found, which is impossible with the remove-both candidate")
}
