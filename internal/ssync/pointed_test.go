package ssync

import (
	"testing"

	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/robot"
)

func TestPointedEdgeAdversaryBlocksEverything(t *testing.T) {
	algs := []robot.Algorithm{
		core.PEF3Plus{}, core.PEF2{}, core.PEF1{},
		baseline.KeepDirection{}, baseline.BounceOnMissing{},
		baseline.TowerBounce{}, baseline.Oscillator{},
		baseline.DoublingZigzag{}, baseline.LCGWalker{Seed: 3},
	}
	for _, alg := range algs {
		chirs := []robot.Chirality{robot.RightIsCW, robot.RightIsCCW, robot.RightIsCW}
		adv := NewPointedEdgeAdversary(7, alg, chirs)
		sim, err := New(Config{
			Algorithm:   alg,
			Dynamics:    adv,
			Activation:  RoundRobin{K: 3},
			Nodes:       []int{0, 2, 4},
			Chiralities: chirs,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(300)
		if sim.Moves() != 0 {
			t.Errorf("%s: %d moves under the pointed-edge adversary", alg.Name(), sim.Moves())
		}
		if adv.SingleRemovals()+adv.BothRemovals() != 300 {
			t.Errorf("%s: removal accounting off: %d+%d", alg.Name(), adv.SingleRemovals(), adv.BothRemovals())
		}
	}
}

func TestPointedEdgeAdversaryUsesSingleRemovalsWhenPossible(t *testing.T) {
	// keep-direction never re-points: removing just its pointed edge is
	// always a fixed point, so every snapshot stays connected.
	chirs := []robot.Chirality{robot.RightIsCW}
	adv := NewPointedEdgeAdversary(5, baseline.KeepDirection{}, chirs)
	sim, err := New(Config{
		Algorithm:   baseline.KeepDirection{},
		Dynamics:    adv,
		Activation:  RoundRobin{K: 1},
		Nodes:       []int{0},
		Chiralities: chirs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(100)
	if sim.Moves() != 0 {
		t.Fatal("keep-direction moved")
	}
	if adv.BothRemovals() != 0 {
		t.Fatalf("keep-direction needed %d both-removals", adv.BothRemovals())
	}
	if adv.SingleRemovals() != 100 {
		t.Fatalf("single removals = %d", adv.SingleRemovals())
	}
}

func TestPointedEdgeAdversaryFallsBackForChasers(t *testing.T) {
	// bounce-on-missing chases whichever edge is present: single-edge
	// removal cannot pin it, so the fallback must fire.
	chirs := []robot.Chirality{robot.RightIsCW}
	adv := NewPointedEdgeAdversary(5, baseline.BounceOnMissing{}, chirs)
	sim, err := New(Config{
		Algorithm:   baseline.BounceOnMissing{},
		Dynamics:    adv,
		Activation:  RoundRobin{K: 1},
		Nodes:       []int{0},
		Chiralities: chirs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(50)
	if sim.Moves() != 0 {
		t.Fatal("bounce-on-missing moved")
	}
	if adv.BothRemovals() == 0 {
		t.Fatal("expected both-removal fallbacks for a present-edge chaser")
	}
}

func TestPointedEdgeAdversaryRejectsMultiActivation(t *testing.T) {
	adv := NewPointedEdgeAdversary(5, baseline.KeepDirection{}, []robot.Chirality{robot.RightIsCW, robot.RightIsCW})
	defer func() {
		if recover() == nil {
			t.Fatal("multi-activation accepted")
		}
	}()
	adv.EdgesAt(0, []int{0, 2}, []int{0, 1})
}

func TestPointedEdgeAdversaryIdleInstant(t *testing.T) {
	adv := NewPointedEdgeAdversary(4, baseline.KeepDirection{}, []robot.Chirality{robot.RightIsCW})
	edges := adv.EdgesAt(0, []int{0}, nil)
	if !edges.IsFull() {
		t.Fatal("no activation should leave the graph intact")
	}
}
