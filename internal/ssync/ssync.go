// Package ssync implements a semi-synchronous (SSYNC) scheduler and the
// edge-removal adversary of Di Luna et al. (ICDCS 2016) that the paper
// invokes in its related-work section to justify restricting the study to
// FSYNC: in SSYNC, an adversary that both picks which robots are activated
// and which edges are present can prevent any exploration algorithm from
// ever moving a robot, independent of all other assumptions.
//
// In SSYNC, at each instant an arbitrary non-empty subset of robots is
// activated; each activated robot performs a full atomic Look–Compute–Move
// cycle on the instant's snapshot; the others do nothing (they do not even
// observe). Fairness requires every robot to be activated infinitely often.
package ssync

import (
	"fmt"

	"pef/internal/ring"
	"pef/internal/robot"
)

// Activation decides which robots run their cycle at instant t. At least
// one robot must be activated whenever the scheduler is consulted with a
// non-empty system (fairness across time is the scheduler's contract;
// RoundRobin trivially satisfies it).
type Activation interface {
	// Active returns the activated robot indices at instant t, given the
	// current positions.
	Active(t int, positions []int) []int
}

// RoundRobin activates exactly one robot per instant, cycling through
// indices — the canonical fair SSYNC schedule.
type RoundRobin struct {
	// K is the number of robots.
	K int
}

// Active implements Activation.
func (rr RoundRobin) Active(t int, _ []int) []int {
	if rr.K <= 0 {
		return nil
	}
	return []int{t % rr.K}
}

// AllActive activates every robot every instant, which makes the SSYNC
// scheduler coincide with FSYNC — used as the control in E-X4.
type AllActive struct {
	K int
}

// Active implements Activation.
func (aa AllActive) Active(_ int, _ []int) []int {
	out := make([]int, aa.K)
	for i := range out {
		out[i] = i
	}
	return out
}

// Dynamics decides the presence set per instant, knowing which robots are
// activated (the SSYNC adversary of [10] needs exactly this power).
type Dynamics interface {
	Ring() ring.Ring
	// EdgesAt returns E_t given positions and the activated set.
	EdgesAt(t int, positions []int, active []int) ring.EdgeSet
}

// Config assembles an SSYNC simulation.
type Config struct {
	Algorithm  robot.Algorithm
	Dynamics   Dynamics
	Activation Activation
	// Placements holds initial node and chirality per robot.
	Nodes       []int
	Chiralities []robot.Chirality
}

// Simulator executes SSYNC rounds.
type Simulator struct {
	r     ring.Ring
	dyn   Dynamics
	act   Activation
	cores []robot.Core
	chirs []robot.Chirality
	nodes []int
	t     int
	moves int
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Algorithm == nil || cfg.Dynamics == nil || cfg.Activation == nil {
		return nil, fmt.Errorf("ssync: missing algorithm, dynamics or activation")
	}
	if len(cfg.Nodes) == 0 || len(cfg.Nodes) != len(cfg.Chiralities) {
		return nil, fmt.Errorf("ssync: %d nodes vs %d chiralities", len(cfg.Nodes), len(cfg.Chiralities))
	}
	r := cfg.Dynamics.Ring()
	s := &Simulator{
		r:     r,
		dyn:   cfg.Dynamics,
		act:   cfg.Activation,
		cores: make([]robot.Core, len(cfg.Nodes)),
		chirs: append([]robot.Chirality(nil), cfg.Chiralities...),
		nodes: append([]int(nil), cfg.Nodes...),
	}
	for i, n := range cfg.Nodes {
		if !r.ValidNode(n) {
			return nil, fmt.Errorf("ssync: robot %d on invalid node %d", i, n)
		}
		if !cfg.Chiralities[i].Valid() {
			return nil, fmt.Errorf("ssync: robot %d has invalid chirality", i)
		}
		s.cores[i] = cfg.Algorithm.NewCore()
	}
	return s, nil
}

// Positions returns a copy of the robots' current nodes.
func (s *Simulator) Positions() []int { return append([]int(nil), s.nodes...) }

// Now returns the current instant.
func (s *Simulator) Now() int { return s.t }

// Moves returns the total number of edge traversals performed so far.
func (s *Simulator) Moves() int { return s.moves }

// Step executes one SSYNC instant: the activation set runs atomic
// Look–Compute–Move cycles on this instant's snapshot.
func (s *Simulator) Step() {
	active := s.act.Active(s.t, s.Positions())
	edges := s.dyn.EdgesAt(s.t, s.Positions(), active)

	occupancy := make(map[int]int, len(s.nodes))
	for _, n := range s.nodes {
		occupancy[n]++
	}

	isActive := make([]bool, len(s.nodes))
	for _, i := range active {
		isActive[i] = true
	}

	// Look for all activated robots on the same snapshot, then Compute,
	// then Move — atomic per activation but synchronous within the subset
	// (the adversary below only ever activates one robot, so the subtlety
	// is moot for E-X4; for general schedules this matches FSYNC semantics
	// restricted to the active subset).
	views := make([]robot.View, len(s.nodes))
	for i := range s.nodes {
		if !isActive[i] {
			continue
		}
		pointed := s.globalDir(i)
		views[i] = robot.View{
			EdgeDir:     edges.Contains(s.r.EdgeTowards(s.nodes[i], pointed)),
			EdgeOpp:     edges.Contains(s.r.EdgeTowards(s.nodes[i], pointed.Opposite())),
			OtherRobots: occupancy[s.nodes[i]] > 1,
		}
	}
	for i := range s.nodes {
		if isActive[i] {
			s.cores[i].Compute(views[i])
		}
	}
	for i := range s.nodes {
		if !isActive[i] {
			continue
		}
		pointed := s.globalDir(i)
		if edges.Contains(s.r.EdgeTowards(s.nodes[i], pointed)) {
			s.nodes[i] = s.r.Next(s.nodes[i], pointed)
			s.moves++
		}
	}
	s.t++
}

func (s *Simulator) globalDir(i int) ring.Direction {
	if s.chirs[i].GlobalSign(s.cores[i].Dir()) > 0 {
		return ring.CW
	}
	return ring.CCW
}

// Run executes instants until the horizon.
func (s *Simulator) Run(horizon int) {
	for s.t < horizon {
		s.Step()
	}
}

// FreezeAdversary is the [10]-style SSYNC adversary: whenever a robot is
// activated, both adjacent edges of its node are removed; all other edges
// are present. Combined with any fair one-at-a-time activation schedule:
//
//   - no robot ever moves (its cycle always sees no usable edge), and
//   - every edge is present at every instant in which no activated robot
//     sits next to it, hence (with k < n robots that never move) every
//     edge is present infinitely often: the realized evolving graph is
//     connected-over-time.
//
// Exploration therefore fails on a legal connected-over-time ring for any
// algorithm — the impossibility that forces the paper into FSYNC.
type FreezeAdversary struct {
	r ring.Ring
}

// NewFreezeAdversary builds the adversary for an n-node ring.
func NewFreezeAdversary(n int) *FreezeAdversary {
	return &FreezeAdversary{r: ring.New(n)}
}

// Ring implements Dynamics.
func (f *FreezeAdversary) Ring() ring.Ring { return f.r }

// EdgesAt implements Dynamics.
func (f *FreezeAdversary) EdgesAt(_ int, positions []int, active []int) ring.EdgeSet {
	edges := ring.FullEdgeSet(f.r.Edges())
	for _, i := range active {
		edges.Remove(f.r.EdgeTowards(positions[i], ring.CW))
		edges.Remove(f.r.EdgeTowards(positions[i], ring.CCW))
	}
	return edges
}

// ObliviousFull is the all-edges-present SSYNC dynamics, used as a control.
type ObliviousFull struct {
	R ring.Ring
}

// Ring implements Dynamics.
func (o ObliviousFull) Ring() ring.Ring { return o.R }

// EdgesAt implements Dynamics.
func (o ObliviousFull) EdgesAt(_ int, _ []int, _ []int) ring.EdgeSet {
	return ring.FullEdgeSet(o.R.Edges())
}
