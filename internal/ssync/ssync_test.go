package ssync

import (
	"testing"

	"pef/internal/core"
	"pef/internal/ring"
	"pef/internal/robot"
)

func TestRoundRobinActivation(t *testing.T) {
	rr := RoundRobin{K: 3}
	for tt := 0; tt < 9; tt++ {
		active := rr.Active(tt, nil)
		if len(active) != 1 || active[0] != tt%3 {
			t.Fatalf("Active(%d) = %v", tt, active)
		}
	}
	if got := (RoundRobin{K: 0}).Active(0, nil); got != nil {
		t.Fatalf("empty system activation = %v", got)
	}
}

func TestAllActive(t *testing.T) {
	aa := AllActive{K: 4}
	active := aa.Active(17, nil)
	if len(active) != 4 {
		t.Fatalf("Active = %v", active)
	}
	for i, a := range active {
		if a != i {
			t.Fatalf("Active = %v", active)
		}
	}
}

func TestNewValidation(t *testing.T) {
	full := ObliviousFull{R: ring.New(4)}
	cases := []Config{
		{Dynamics: full, Activation: RoundRobin{K: 1}, Nodes: []int{0}, Chiralities: []robot.Chirality{robot.RightIsCW}},                                // nil alg
		{Algorithm: core.PEF3Plus{}, Activation: RoundRobin{K: 1}, Nodes: []int{0}, Chiralities: []robot.Chirality{robot.RightIsCW}},                    // nil dynamics
		{Algorithm: core.PEF3Plus{}, Dynamics: full, Activation: RoundRobin{K: 1}},                                                                      // no robots
		{Algorithm: core.PEF3Plus{}, Dynamics: full, Activation: RoundRobin{K: 1}, Nodes: []int{0, 1}, Chiralities: []robot.Chirality{robot.RightIsCW}}, // length mismatch
		{Algorithm: core.PEF3Plus{}, Dynamics: full, Activation: RoundRobin{K: 1}, Nodes: []int{9}, Chiralities: []robot.Chirality{robot.RightIsCW}},    // bad node
		{Algorithm: core.PEF3Plus{}, Dynamics: full, Activation: RoundRobin{K: 1}, Nodes: []int{0}, Chiralities: []robot.Chirality{0}},                  // bad chirality
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAllActiveOnFullGraphMatchesFSYNC(t *testing.T) {
	// With every robot active and all edges present, SSYNC == FSYNC: a
	// keep-direction robot (PEF_3+ alone never meets anyone) circles.
	sim, err := New(Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    ObliviousFull{R: ring.New(5)},
		Activation:  AllActive{K: 1},
		Nodes:       []int{0},
		Chiralities: []robot.Chirality{robot.RightIsCW},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 2, 1, 0}
	for i, w := range want {
		sim.Step()
		if got := sim.Positions()[0]; got != w {
			t.Fatalf("step %d: at %d, want %d", i, got, w)
		}
	}
	if sim.Moves() != 5 || sim.Now() != 5 {
		t.Fatalf("moves=%d now=%d", sim.Moves(), sim.Now())
	}
}

func TestInactiveRobotsDoNothing(t *testing.T) {
	// Round-robin over 2 robots: at each instant only one may move.
	sim, err := New(Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    ObliviousFull{R: ring.New(6)},
		Activation:  RoundRobin{K: 2},
		Nodes:       []int{0, 3},
		Chiralities: []robot.Chirality{robot.RightIsCW, robot.RightIsCW},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Positions()
	sim.Step() // activates robot 0 only
	after := sim.Positions()
	if after[1] != before[1] {
		t.Fatal("inactive robot moved")
	}
	if after[0] == before[0] {
		t.Fatal("active robot did not move on full graph")
	}
}

func TestFreezeAdversaryBlocksEveryVictim(t *testing.T) {
	algs := []robot.Algorithm{core.PEF3Plus{}, core.PEF2{}, core.PEF1{}}
	for _, alg := range algs {
		sim, err := New(Config{
			Algorithm:   alg,
			Dynamics:    NewFreezeAdversary(6),
			Activation:  RoundRobin{K: 3},
			Nodes:       []int{0, 2, 4},
			Chiralities: []robot.Chirality{robot.RightIsCW, robot.RightIsCCW, robot.RightIsCW},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(300)
		if sim.Moves() != 0 {
			t.Fatalf("%s: %d moves under the freeze adversary", alg.Name(), sim.Moves())
		}
	}
}

func TestFreezeAdversaryGraphIsConnectedOverTime(t *testing.T) {
	// With static robots on even nodes and round-robin activation, every
	// edge is present whenever its neighbouring robot is inactive — i.e.
	// at least 2 of every 3 instants.
	adv := NewFreezeAdversary(6)
	positions := []int{0, 2, 4}
	presentCount := make([]int, 6)
	const horizon = 300
	for tt := 0; tt < horizon; tt++ {
		active := (RoundRobin{K: 3}).Active(tt, positions)
		edges := adv.EdgesAt(tt, positions, active)
		for e := 0; e < 6; e++ {
			if edges.Contains(e) {
				presentCount[e]++
			}
		}
	}
	for e, c := range presentCount {
		if c < horizon/2 {
			t.Fatalf("edge %d present only %d/%d instants", e, c, horizon)
		}
	}
}

func TestFreezeAdversaryRemovesActiveNeighbourhood(t *testing.T) {
	adv := NewFreezeAdversary(5)
	edges := adv.EdgesAt(0, []int{2, 4}, []int{0})
	// Robot 0 on node 2: its adjacent edges 1 and 2 must be gone.
	if edges.Contains(1) || edges.Contains(2) {
		t.Fatalf("active robot's edges present: %v", edges)
	}
	// Robot 1 inactive: its edges stay.
	if !edges.Contains(3) || !edges.Contains(4) {
		t.Fatalf("inactive robot's edges removed: %v", edges)
	}
}
