package telemetry

import "testing"

// TestCounterRecordAllocFree pins the hot-path recording contract: once
// an instrument exists, Inc/Add/Set on it — and on nil instruments, the
// telemetry-off path — allocate nothing. Hist.Observe is also guarded
// for steady state (re-observing an already-seen value hits an existing
// map cell).
func TestCounterRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Hist("h")
	h.Observe(3) // pre-seed the steady-state cell
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Add(-1)
		g.Set(0)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("live instrument recording allocates %v/op, want 0", n)
	}
	var nc *Counter
	var ng *Gauge
	var nh *Hist
	if n := testing.AllocsPerRun(200, func() {
		nc.Inc()
		nc.Add(2)
		ng.Add(1)
		ng.Set(0)
		nh.Observe(3)
	}); n != 0 {
		t.Fatalf("nil-instrument (telemetry off) path allocates %v/op, want 0", n)
	}
}
