package telemetry

import (
	"sync"

	"pef/internal/metrics"
)

// Hist is a metrics.Dist-backed histogram of integer observations:
// memory grows with distinct values, never with observation count, and
// merging is commutative — the same properties campaign aggregation
// relies on. Recording takes a mutex rather than an atomic, so Hist
// belongs on per-event paths (per job, per block, per run flush), not
// inside the per-round simulation loop; the engine instead accumulates
// plain ints per run and flushes once into a Counter or Hist.
//
// All methods are safe on a nil receiver.
type Hist struct {
	mu sync.Mutex
	d  *metrics.Dist
}

func newHist() *Hist {
	return &Hist{d: metrics.NewDist()}
}

// Observe records one observation of v. Nil receiver: no-op.
func (h *Hist) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN records n observations of v. Nil receiver or non-positive n:
// no-op.
func (h *Hist) ObserveN(v, n int) {
	if h == nil || n <= 0 {
		return
	}
	h.mu.Lock()
	h.d.AddN(v, n)
	h.mu.Unlock()
}

// Count returns the number of observations. Nil receiver: 0.
func (h *Hist) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.d.Count()
}

// Value snapshots the histogram: summary plus exact cells. Nil
// receiver: zero HistValue.
func (h *Hist) Value() HistValue {
	if h == nil {
		return HistValue{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.d.Summary()
	v := HistValue{
		Count:  s.Count,
		Min:    s.Min,
		Max:    s.Max,
		Mean:   s.Mean,
		Median: s.Median,
		P95:    s.P95,
	}
	if s.Count > 0 {
		v.Cells = h.d.Entries()
	}
	return v
}

// mergeHistValues combines two histogram snapshots exactly: the cells
// are merged as distributions and the summary recomputed, so merged
// medians/quantiles equal those of the union multiset.
func mergeHistValues(a, b HistValue) HistValue {
	d := metrics.NewDist()
	for _, e := range a.Cells {
		d.AddN(e.Value, e.Count)
	}
	for _, e := range b.Cells {
		d.AddN(e.Value, e.Count)
	}
	s := d.Summary()
	v := HistValue{
		Count:  s.Count,
		Min:    s.Min,
		Max:    s.Max,
		Mean:   s.Mean,
		Median: s.Median,
		P95:    s.P95,
	}
	if s.Count > 0 {
		v.Cells = d.Entries()
	}
	return v
}
