//go:build race

package telemetry

// raceEnabled gates the allocation-discipline guards: the race detector
// instruments allocations, so AllocsPerRun numbers are meaningless there.
const raceEnabled = true
