package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live introspection endpoint: a snapshot of a
// Registry as JSON plus the standard pprof handlers. It observes, it
// never participates — nothing in the engine reads from it, so its
// presence cannot perturb campaign output.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP introspection server on addr (":0" picks a free
// port — use Addr to discover it). Routes:
//
//	/            index: links to the routes below
//	/metrics     current Registry snapshot as JSON
//	/debug/pprof the standard net/http/pprof handlers
//
// snapshot is called per /metrics request; passing Registry.Snapshot of
// a nil registry is valid and serves an empty snapshot.
func Serve(addr string, snapshot func() Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "pef telemetry endpoint")
		fmt.Fprintln(w, "  /metrics      registry snapshot (JSON)")
		fmt.Fprintln(w, "  /debug/pprof  runtime profiles")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// The pprof package only auto-registers on http.DefaultServeMux;
	// wire its handlers onto the private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Close() shutdown error is expected
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close shuts the server down. Nil receiver: no-op, so callers can
// `defer srv.Close()` without guarding the disabled case.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
