// Package telemetry is the engine's instrumentation layer: counters,
// gauges, and metrics.Dist-backed histograms registered by name, with
// atomic hot-path recording and an order-independent snapshot/merge
// model.
//
// Two invariants shape the whole package:
//
//   - Off means free. Every recording method is a no-op on a nil
//     receiver, and Registry accessors on a nil registry return nil
//     instruments. Callers thread a single nilable pointer through the
//     stack; "telemetry disabled" is the nil zero value everywhere and
//     costs one predictable branch per record.
//
//   - Observation never perturbs output. Instruments are read on demand
//     (Snapshot), never woven into report or checkpoint rendering, so
//     campaign bytes are identical with telemetry on or off. Snapshots
//     themselves are deterministic-by-construction for deterministic
//     workloads: counters and histograms accumulate commutatively, so
//     any worker interleaving folds to the same totals. Gauges are the
//     documented exception — instantaneous values (jobs in flight,
//     reorder depth) depend on when you look; they are for live
//     introspection, not for byte-stable artifacts.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"pef/internal/metrics"
)

// Counter is a monotonically growing event count. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops reading
// zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (may be negative, though counters are conventionally
// monotone). Nil receiver: no-op.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count. Nil receiver: 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level with a high-water mark. Set/Add update
// the level and ratchet the high-water mark; both are safe on a nil
// receiver.
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set replaces the level. Nil receiver: no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.ratchet(v)
}

// Add shifts the level by d. Nil receiver: no-op.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.ratchet(g.v.Add(d))
}

func (g *Gauge) ratchet(v int64) {
	for {
		hi := g.hi.Load()
		if v <= hi || g.hi.CompareAndSwap(hi, v) {
			return
		}
	}
}

// Value returns the current level. Nil receiver: 0.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high-water mark. Nil receiver: 0.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

// Registry is a name-indexed set of instruments. Accessors get-or-create
// under a mutex — instrument creation is cold-path; the returned
// pointers record lock-free. A nil Registry hands out nil instruments,
// so one nil check at wiring time disables a whole subsystem's
// telemetry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registry: nil (a valid no-op instrument).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry:
// nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use. Nil
// registry: nil.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHist()
		r.hists[name] = h
	}
	return h
}

// GaugeValue is a gauge's snapshot: the instantaneous level and the
// high-water mark.
type GaugeValue struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// HistValue is a histogram's snapshot: the condensed summary plus the
// exact value→count cells (ascending value order). The cells make
// snapshot merging exact — merged summaries are recomputed from merged
// cells, never approximated from two summaries.
type HistValue struct {
	Count  int                 `json:"count"`
	Min    int                 `json:"min"`
	Max    int                 `json:"max"`
	Mean   float64             `json:"mean"`
	Median float64             `json:"median"`
	P95    float64             `json:"p95"`
	Cells  []metrics.DistEntry `json:"cells,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// encoding/json renders map keys sorted, so a snapshot of deterministic
// counters/histograms marshals to identical bytes regardless of the
// order instruments were created or recorded.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]GaugeValue `json:"gauges,omitempty"`
	Hists    map[string]HistValue  `json:"hists,omitempty"`
}

// Snapshot copies the current instrument values. Nil registry: zero
// Snapshot. Zero-valued counters and empty histograms are included —
// existence is information (the subsystem was wired, nothing fired).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeValue, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeValue{Value: g.Value(), High: g.High()}
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistValue, len(r.hists))
		for name, h := range r.hists {
			s.Hists[name] = h.Value()
		}
	}
	return s
}

// Merge folds o into s: counters add, gauge levels add with the
// high-water maxed (the multi-registry reading of "total in flight"),
// histograms merge cell-wise. Merge is commutative and associative over
// counters and histograms, so snapshots from sharded runs fold to the
// same totals in any order.
func (s *Snapshot) Merge(o Snapshot) {
	for name, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[name] += v
	}
	for name, g := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]GaugeValue)
		}
		cur := s.Gauges[name]
		cur.Value += g.Value
		if g.High > cur.High {
			cur.High = g.High
		}
		s.Gauges[name] = cur
	}
	for name, h := range o.Hists {
		if s.Hists == nil {
			s.Hists = make(map[string]HistValue)
		}
		s.Hists[name] = mergeHistValues(s.Hists[name], h)
	}
}

// CounterNames returns the snapshot's counter names in sorted order —
// convenience for deterministic rendering in progress lines and tests.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
