package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pef/internal/metrics"
)

// TestNilSafety pins the package's core contract: every instrument
// method and every Registry accessor is a no-op (or zero) on a nil
// receiver. "Telemetry off" is nil pointers all the way down.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.High() != 0 {
		t.Fatalf("nil gauge = %d/%d", g.Value(), g.High())
	}
	var h *Hist
	h.Observe(7)
	h.ObserveN(7, 3)
	if h.Count() != 0 {
		t.Fatalf("nil hist count = %d", h.Count())
	}
	if got := h.Value(); got.Count != 0 || got.Cells != nil {
		t.Fatalf("nil hist value = %+v", got)
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Hist("x") != nil {
		t.Fatal("nil registry handed out a non-nil instrument")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Hists != nil {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
	var tr *Tracer
	tr.Emit("event", nil)
	if tr.Err() != nil {
		t.Fatal("nil tracer reported an error")
	}
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatalf("nil server close: %v", err)
	}
}

func TestCounterGaugeHist(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("jobs") != c {
		t.Fatal("accessor did not return the same counter")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.High() != 5 {
		t.Fatalf("gauge = %d high %d, want 1 high 5", g.Value(), g.High())
	}
	g.Set(2)
	if g.Value() != 2 || g.High() != 5 {
		t.Fatalf("after Set: gauge = %d high %d, want 2 high 5", g.Value(), g.High())
	}
	h := r.Hist("lanes")
	h.Observe(64)
	h.ObserveN(64, 2)
	h.Observe(8)
	v := h.Value()
	if v.Count != 4 || v.Min != 8 || v.Max != 64 {
		t.Fatalf("hist = %+v", v)
	}
	if len(v.Cells) != 2 || v.Cells[0] != (metrics.DistEntry{Value: 8, Count: 1}) {
		t.Fatalf("hist cells = %+v", v.Cells)
	}
}

// TestSnapshotDeterministicJSON checks that two registries fed the same
// observations in different orders marshal to identical bytes.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		r.Hist("h").Observe(3)
		r.Hist("h").Observe(1)
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON depends on creation order:\n%s\n%s", a, b)
	}
}

// TestSnapshotMergeCommutative pins the order-independent merge: any
// merge order of shard snapshots yields the same result, including exact
// recomputed histogram quantiles.
func TestSnapshotMergeCommutative(t *testing.T) {
	mk := func(vals ...int) Snapshot {
		r := NewRegistry()
		for _, v := range vals {
			r.Counter("n").Inc()
			r.Hist("d").Observe(v)
			r.Gauge("g").Set(int64(v))
		}
		return r.Snapshot()
	}
	parts := []Snapshot{mk(1, 5), mk(2), mk(9, 9, 3)}
	var ab, ba Snapshot
	for _, p := range parts {
		ab.Merge(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		ba.Merge(parts[i])
	}
	if !reflect.DeepEqual(ab.Counters, ba.Counters) || !reflect.DeepEqual(ab.Hists, ba.Hists) {
		t.Fatalf("merge not commutative:\n%+v\n%+v", ab, ba)
	}
	h := ab.Hists["d"]
	if h.Count != 6 || h.Min != 1 || h.Max != 9 {
		t.Fatalf("merged hist = %+v", h)
	}
	// Exact-union check: quantiles of the merged snapshot must equal
	// those of a single registry observing everything.
	whole := mk(1, 5, 2, 9, 9, 3).Hists["d"]
	if h.Median != whole.Median || h.P95 != whole.P95 || h.Mean != whole.Mean {
		t.Fatalf("merged summary %+v != whole %+v", h, whole)
	}
	if ab.Gauges["g"].High != 9 {
		t.Fatalf("merged gauge high = %d, want 9", ab.Gauges["g"].High)
	}
}

// TestConcurrentRecording exercises the atomic hot path from many
// goroutines; run under -race this doubles as the data-race check.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			g := r.Gauge("level")
			h := r.Hist("obs")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(w)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Hist("obs").Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
	if g := r.Gauge("level"); g.Value() != 0 || g.High() < 1 || g.High() > workers {
		t.Fatalf("gauge = %d high %d", g.Value(), g.High())
	}
}

// TestTracerDeterministic pins the JSONL format: monotonic seq from 0,
// sorted field keys, no timestamps — two identical emission sequences
// produce identical bytes.
func TestTracerDeterministic(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.Emit("campaign-start", map[string]any{"generator": "uniform", "count": 10})
		tr.Emit("block-retired", map[string]any{"block": 0, "specs": 5})
		tr.Emit("campaign-end", nil)
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatalf("tracer output not deterministic:\n%s\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("line %d has seq %d", i, ev.Seq)
		}
	}
	if !strings.HasPrefix(lines[0], `{"seq":0,"event":"campaign-start","fields":{"count":10,"generator":"uniform"}}`) {
		t.Fatalf("unexpected first line: %s", lines[0])
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after--
	return len(p), nil
}

func TestTracerLatchesWriteError(t *testing.T) {
	tr := NewTracer(&failWriter{after: 1})
	tr.Emit("ok", nil)
	tr.Emit("fails", nil)
	tr.Emit("dropped", nil)
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "fails") {
		t.Fatalf("err = %v, want latched failure on %q", err, "fails")
	}
}

// TestServeEndToEnd boots the introspection server on a free port and
// checks /metrics JSON, the index, and a pprof route.
func TestServeEndToEnd(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(42)
	r.Hist("margin").Observe(7)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["runs"] != 42 || snap.Hists["margin"].Count != 1 {
		t.Fatalf("/metrics snapshot = %+v", snap)
	}

	if code, body := get("/"); code != http.StatusOK || !strings.Contains(string(body), "/debug/pprof") {
		t.Fatalf("index: status %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}
