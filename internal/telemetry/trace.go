package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one JSONL trace record. Seq is a per-tracer monotonic
// sequence number — deliberately the only ordering field: wall clocks
// would make trace files differ between runs and worker counts, and the
// tracing contract is the same as the report contract (same campaign,
// same bytes). Fields carry event-specific data; encoding/json sorts the
// map keys, so a record's rendering is independent of insertion order.
type Event struct {
	Seq    int64          `json:"seq"`
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Tracer serializes Events to an io.Writer as JSON lines. Emission takes
// a mutex — tracing belongs on campaign-structure edges (campaign start,
// block retired, checkpoint written), which fire orders of magnitude
// less often than runs. For deterministic trace files, emit only from
// deterministic points (the single-threaded fold loop, not worker
// goroutines) and put no wall-clock or host-dependent data in Fields.
//
// All methods are safe on a nil receiver, so an unset -trace-events flag
// is a nil Tracer threaded through unchanged.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
}

// NewTracer creates a tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Emit writes one event with the next sequence number. Nil receiver:
// no-op. After a write error the tracer latches it and drops subsequent
// events (Err reports the first failure).
func (t *Tracer) Emit(event string, fields map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	rec := Event{Seq: t.seq, Event: event, Fields: fields}
	b, err := json.Marshal(rec)
	if err != nil {
		t.err = fmt.Errorf("telemetry: marshal trace event %q: %w", event, err)
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = fmt.Errorf("telemetry: write trace event %q: %w", event, err)
		return
	}
	t.seq++
}

// Err returns the first emission failure, if any. Nil receiver: nil.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
