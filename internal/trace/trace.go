// Package trace renders and serializes executions. Its space–time diagrams
// are the textual analogue of the paper's Figures 2 and 3: one line per
// instant showing which edges the adversary removed and where the robots
// stand.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pef/internal/dyngraph"
	"pef/internal/fsync"
)

// SpaceTime renders instants [from, to) of an execution: the recorded
// evolving graph and the per-instant snapshots (as collected by an
// fsync.SnapshotRecorder).
//
// Each line looks like
//
//	t=  3  |  .  ~ [1]-- .  --[0]~  .  |
//
// where [i] is robot i (digits join for towers), "." an empty node, "--" a
// present edge and " ~" a missing one. The trailing edge closes the ring.
func SpaceTime(w io.Writer, g *dyngraph.Recorded, snaps []fsync.Snapshot, from, to int) error {
	n := g.Ring().Size()
	for t := from; t < to && t < len(snaps); t++ {
		if _, err := fmt.Fprintf(w, "t=%4d  |", t); err != nil {
			return err
		}
		edges := g.Snapshot(t)
		for node := 0; node < n; node++ {
			if _, err := io.WriteString(w, nodeCell(snaps[t], node)); err != nil {
				return err
			}
			if _, err := io.WriteString(w, edgeCell(edges.Contains(node))); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "|\n"); err != nil {
			return err
		}
	}
	return nil
}

// SpaceTimeString is SpaceTime into a string.
func SpaceTimeString(g *dyngraph.Recorded, snaps []fsync.Snapshot, from, to int) string {
	var b strings.Builder
	// strings.Builder never fails.
	_ = SpaceTime(&b, g, snaps, from, to)
	return b.String()
}

// nodeCell renders one node: robots standing on it, or a dot.
func nodeCell(snap fsync.Snapshot, node int) string {
	var ids []string
	for i, p := range snap.Positions {
		if p == node {
			ids = append(ids, fmt.Sprintf("%d", i))
		}
	}
	if len(ids) == 0 {
		return " . "
	}
	return "[" + strings.Join(ids, "") + "]"
}

// edgeCell renders one edge: present or missing.
func edgeCell(present bool) string {
	if present {
		return "--"
	}
	return " ~"
}

// Header renders the node indices line aligned with SpaceTime rows.
func Header(n int) string {
	var b strings.Builder
	b.WriteString("        |")
	for node := 0; node < n; node++ {
		fmt.Fprintf(&b, "%2d   ", node%100)
	}
	b.WriteString("|\n")
	return b.String()
}

// Round is the JSON schema of one executed round.
type Round struct {
	T         int      `json:"t"`
	Edges     []int    `json:"edges"`
	Positions []int    `json:"positions"`
	Dirs      []string `json:"dirs"`
	States    []string `json:"states"`
	Moved     []bool   `json:"moved"`
	Flipped   []bool   `json:"flipped"`
}

// FromEvent converts a round event to its serializable form. This is the
// trace boundary where compact robot.StateCode values are rendered into
// their classic string encodings.
func FromEvent(ev fsync.RoundEvent) Round {
	dirs := make([]string, len(ev.After.GlobalDirs))
	for i, d := range ev.After.GlobalDirs {
		dirs[i] = d.String()
	}
	states := make([]string, len(ev.After.States))
	for i, s := range ev.After.States {
		states[i] = s.String()
	}
	return Round{
		T:         ev.T,
		Edges:     ev.Edges.Edges(),
		Positions: append([]int(nil), ev.After.Positions...),
		Dirs:      dirs,
		States:    states,
		Moved:     append([]bool(nil), ev.Moved...),
		Flipped:   append([]bool(nil), ev.Flipped...),
	}
}

// JSONLogger is an fsync.Observer writing one JSON object per round
// (JSON-lines format) to an io.Writer.
type JSONLogger struct {
	enc *json.Encoder
	err error
}

// NewJSONLogger builds a logger writing to w.
func NewJSONLogger(w io.Writer) *JSONLogger {
	return &JSONLogger{enc: json.NewEncoder(w)}
}

// ObserveRound implements fsync.Observer.
func (l *JSONLogger) ObserveRound(ev fsync.RoundEvent) {
	if l.err != nil {
		return
	}
	l.err = l.enc.Encode(FromEvent(ev))
}

// Err returns the first encoding error, if any.
func (l *JSONLogger) Err() error { return l.err }

// ReadRounds decodes a JSON-lines round log.
func ReadRounds(r io.Reader) ([]Round, error) {
	dec := json.NewDecoder(r)
	var out []Round
	for dec.More() {
		var rd Round
		if err := dec.Decode(&rd); err != nil {
			return out, fmt.Errorf("trace: decoding round %d: %w", len(out), err)
		}
		out = append(out, rd)
	}
	return out, nil
}
