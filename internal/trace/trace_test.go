package trace

import (
	"bytes"
	"strings"
	"testing"

	"pef/internal/baseline"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// runRecorded produces a recorded graph and snapshots from a tiny run.
func runRecorded(t *testing.T) (*dyngraph.Recorded, []fsync.Snapshot) {
	t.Helper()
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm: baseline.KeepDirection{},
		Dynamics:  fsync.Oblivious{G: dyngraph.NewEventualMissing(dyngraph.NewStatic(5), 2, 2)},
		Placements: []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 3, Chirality: robot.RightIsCCW},
		},
		Observers:   []fsync.Observer{rec},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(6)
	snaps := make([]fsync.Snapshot, rec.Len())
	for i := range snaps {
		snaps[i] = rec.At(i)
	}
	return sim.RecordedGraph(), snaps
}

func TestSpaceTimeRendering(t *testing.T) {
	g, snaps := runRecorded(t)
	out := SpaceTimeString(g, snaps, 0, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "t=   0") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(lines[0], "[0]") || !strings.Contains(lines[0], "[1]") {
		t.Fatalf("robots not rendered: %q", lines[0])
	}
	// After t=2 edge 2 is missing: the missing-edge marker must appear.
	if !strings.Contains(lines[3], " ~") {
		t.Fatalf("missing edge not rendered: %q", lines[3])
	}
}

func TestSpaceTimeTowerRendering(t *testing.T) {
	// Craft a snapshot with both robots on node 1.
	snap := fsync.Snapshot{
		T:         0,
		Positions: []int{1, 1},
		GlobalDirs: []ring.Direction{
			ring.CW, ring.CCW,
		},
		States:    []robot.StateCode{{}, {}},
		MovedPrev: []bool{false, false},
	}
	g := dyngraph.NewRecorded(3)
	g.Append(ring.FullEdgeSet(3))
	out := SpaceTimeString(g, []fsync.Snapshot{snap}, 0, 1)
	if !strings.Contains(out, "[01]") {
		t.Fatalf("tower not rendered: %q", out)
	}
}

func TestHeaderAlignment(t *testing.T) {
	h := Header(5)
	if !strings.Contains(h, " 0") || !strings.Contains(h, " 4") {
		t.Fatalf("header %q", h)
	}
}

func TestSpaceTimeWriterError(t *testing.T) {
	g, snaps := runRecorded(t)
	w := &failingWriter{}
	if err := SpaceTime(w, g, snaps, 0, 3); err == nil {
		t.Fatal("writer error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, bytes.ErrTooLarge
}

func TestJSONLoggerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	logger := NewJSONLogger(&buf)
	sim, err := fsync.New(fsync.Config{
		Algorithm:  baseline.BounceOnMissing{},
		Dynamics:   fsync.Oblivious{G: dyngraph.NewStatic(4)},
		Placements: []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
		Observers:  []fsync.Observer{logger},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(5)
	if logger.Err() != nil {
		t.Fatal(logger.Err())
	}
	rounds, err := ReadRounds(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Fatalf("decoded %d rounds", len(rounds))
	}
	for i, r := range rounds {
		if r.T != i {
			t.Fatalf("round %d has T=%d", i, r.T)
		}
		if len(r.Positions) != 1 || len(r.Edges) != 4 {
			t.Fatalf("round %d malformed: %+v", i, r)
		}
		if r.Dirs[0] != "CW" && r.Dirs[0] != "CCW" {
			t.Fatalf("round %d dir %q", i, r.Dirs[0])
		}
	}
}

func TestReadRoundsRejectsGarbage(t *testing.T) {
	if _, err := ReadRounds(strings.NewReader("{\"t\":0}\nnot-json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFromEventCopies(t *testing.T) {
	ev := fsync.RoundEvent{
		T:     3,
		Edges: ring.EdgeSetOf(4, 1, 2),
		After: fsync.Snapshot{
			Positions:  []int{2},
			GlobalDirs: []ring.Direction{ring.CW},
			States:     []robot.StateCode{robot.DirState(robot.Left)},
		},
		Moved:   []bool{true},
		Flipped: []bool{false},
	}
	r := FromEvent(ev)
	r.Positions[0] = 99
	if ev.After.Positions[0] != 2 {
		t.Fatal("FromEvent shares storage with the event")
	}
	if len(r.Edges) != 2 || r.Edges[0] != 1 {
		t.Fatalf("edges = %v", r.Edges)
	}
}
