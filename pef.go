// Package pef is the public API of this repository: a faithful, executable
// reproduction of
//
//	Marjorie Bournat, Swan Dubois, Franck Petit.
//	"Computability of Perpetual Exploration in Highly Dynamic Rings."
//	ICDCS 2017 (arXiv:1612.05767).
//
// The paper characterizes exactly how many fully synchronous, anonymous,
// silent robots are necessary and sufficient to visit every node of a
// connected-over-time ring infinitely often. This package exposes:
//
//   - the paper's three algorithms (PEF_3+, PEF_2, PEF_1),
//   - the evolving-ring simulator and a library of dynamics,
//   - the impossibility adversaries of Theorems 4.1 and 5.1 as runnable
//     adaptive dynamics,
//   - one-call exploration and confinement runs with verdict reports,
//   - the experiment harness regenerating every table and figure of the
//     paper (see EXPERIMENTS.md),
//   - the scenario subsystem: declarative scenario specs, seeded random
//     generators over the full parameter space, and a property oracle
//     checking the paper's predicates over sharded campaigns of generated
//     scenarios (see SCENARIOS.md),
//   - the extension registry: RegisterAlgorithm, RegisterFamily and
//     RegisterProperty make user-supplied algorithms, dynamics families
//     (including ComposeFamilies combinations and PeriodicTimetable
//     schedules) and oracle predicates first-class citizens of the same
//     campaigns (see SCENARIOS.md "Extension registry" and
//     examples/customfamily).
//
// Quick start — the unified, context-aware entry point runs a declarative
// scenario and checks the paper's prediction for it:
//
//	verdict, err := pef.Run(ctx, pef.Scenario{
//		Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: "random",
//		Family: "eventual-missing", Params: pef.ScenarioParams{Edge: 2, From: 32, P: 0.7, Delta: 4},
//		Horizon: 1600, Seed: 42,
//	})
//	// verdict.OK, verdict.Covered, verdict.MaxGap: perpetual exploration.
//
// Imperative configurations ride the same path through options
// (WithDynamics, WithAlgorithm, WithPlacements, WithObservers, WithTrace);
// the classic Explore/Confine calls remain as thin wrappers. Campaigns
// stream verdicts with bounded memory via StreamCampaign, checkpoint and
// resume via CampaignConfig.Resume, and shrink any violation to a minimal
// reproducer with Minimize.
package pef

import (
	"context"
	"fmt"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/scenario"
	"pef/internal/spec"
)

// Algorithm is a uniform deterministic robot algorithm.
type Algorithm = robot.Algorithm

// Chirality fixes how a robot maps its local left/right onto the ring.
type Chirality = robot.Chirality

// Chirality values.
const (
	RightIsCW  = robot.RightIsCW
	RightIsCCW = robot.RightIsCCW
)

// Dynamics decides which edges are present each round (possibly adaptively,
// reacting to robot positions).
type Dynamics = fsync.Dynamics

// Placement is one robot's initial node and chirality.
type Placement = fsync.Placement

// ExplorationReport is the finite-horizon perpetual-exploration verdict.
type ExplorationReport = spec.ExplorationReport

// PEF3Plus returns Algorithm 1 of the paper: perpetual exploration with
// k >= 3 robots on any connected-over-time ring of size n > k.
func PEF3Plus() Algorithm { return core.PEF3Plus{} }

// PEF2 returns the Section 4.2 algorithm: 2 robots on the 3-node ring.
func PEF2() Algorithm { return core.PEF2{} }

// PEF1 returns the Section 5.2 algorithm: 1 robot on the 2-node ring.
func PEF1() Algorithm { return core.PEF1{} }

// ExploreConfig parameterizes a one-call exploration run.
type ExploreConfig struct {
	// Nodes is the ring size n (>= 2).
	Nodes int
	// Robots is the team size k (< n). Ignored when Placements is set.
	Robots int
	// Algorithm is the uniform algorithm; required.
	Algorithm Algorithm
	// Dynamics supplies the evolving ring; required (see Static,
	// Bernoulli, EventualMissing, TInterval, Chain, Roving, BlockPointed).
	Dynamics Dynamics
	// Horizon is the number of synchronous rounds to execute.
	Horizon int
	// Seed drives the pseudo-random initial placement.
	Seed uint64
	// Placements optionally fixes the initial configuration explicitly.
	Placements []Placement
}

// explorePlacements validates an ExploreConfig and realizes its initial
// configuration, shared by Explore and ExploreWithDiagram.
func explorePlacements(cfg ExploreConfig) ([]Placement, int, error) {
	if cfg.Algorithm == nil || cfg.Dynamics == nil {
		return nil, 0, fmt.Errorf("pef: ExploreConfig requires Algorithm and Dynamics")
	}
	n := cfg.Dynamics.Ring().Size()
	if cfg.Nodes != 0 && cfg.Nodes != n {
		return nil, 0, fmt.Errorf("pef: Nodes=%d disagrees with dynamics ring size %d", cfg.Nodes, n)
	}
	if cfg.Horizon < 1 {
		// A zero-round "run" used to be accepted silently and report
		// Covered=0; the unified path rejects it loudly instead.
		return nil, 0, fmt.Errorf("pef: Horizon must be >= 1, got %d (a non-positive horizon executes no rounds)", cfg.Horizon)
	}
	placements := cfg.Placements
	if placements == nil {
		if cfg.Robots <= 0 || cfg.Robots >= n {
			return nil, 0, fmt.Errorf("pef: need 0 < Robots < Nodes, got k=%d n=%d", cfg.Robots, n)
		}
		placements = fsync.RandomPlacements(n, cfg.Robots, prng.NewSource(cfg.Seed))
	}
	return placements, n, nil
}

// Explore runs a fully synchronous execution under ctx and reports
// coverage, cover time and the maximum revisit gap — the empirical
// signature of perpetual exploration. On cancellation it returns the
// partial report over the rounds that executed together with ctx's error.
//
// Deprecated: Explore is a thin wrapper kept for the classic imperative
// call sites; new code should use Run with a Scenario (plus WithDynamics
// for dynamics values that no declarative family describes).
func Explore(ctx context.Context, cfg ExploreConfig) (ExplorationReport, error) {
	placements, n, err := explorePlacements(cfg)
	if err != nil {
		return ExplorationReport{}, err
	}
	vt := spec.NewVisitTracker(n)
	_, err = Run(ctx, Scenario{
		Version:   scenario.Version,
		Ring:      n,
		Robots:    len(placements),
		Algorithm: cfg.Algorithm.Name(),
		Family:    "external",
		Horizon:   cfg.Horizon,
		Seed:      cfg.Seed,
		Expect:    scenario.ExpectNone,
	},
		WithAlgorithm(cfg.Algorithm),
		WithDynamics(cfg.Dynamics),
		WithPlacements(placements...),
		WithObservers(vt),
	)
	if err != nil {
		return vt.Report(), fmt.Errorf("pef: %w", err)
	}
	return vt.Report(), nil
}

// ConfinementReport is the outcome of an impossibility-adversary run.
type ConfinementReport struct {
	// DistinctVisited is how many distinct nodes the robots ever occupied.
	DistinctVisited int
	// VisitedNodes lists them.
	VisitedNodes []int
	// Limit is the confinement bound predicted by the paper (2 for one
	// robot, 3 for two robots).
	Limit int
	// Confined reports DistinctVisited <= Limit.
	Confined bool
}

// confine runs one of the paper's confinement adversaries against alg via
// the unified Run path: the scenario family selects the theorem adversary
// and the proof's initial configuration, the injected Algorithm value is
// the victim, and an extra tracker collects the visited-node list the
// ConfinementReport exposes.
func confine(ctx context.Context, family string, alg Algorithm, n, k, horizon, limit int) (ConfinementReport, error) {
	if alg == nil {
		return ConfinementReport{}, fmt.Errorf("pef: nil algorithm")
	}
	ct := spec.NewConfinementTracker()
	_, err := Run(ctx, Scenario{
		Version:   scenario.Version,
		Ring:      n,
		Robots:    k,
		Algorithm: alg.Name(),
		Placement: scenario.PlaceAdjacent, // label only: the family pins the proof placement
		Family:    family,
		Horizon:   horizon,
		Seed:      0,
		Expect:    scenario.ExpectConfine,
	},
		WithAlgorithm(alg),
		WithObservers(ct),
	)
	rep := ConfinementReport{
		DistinctVisited: ct.Distinct(),
		VisitedNodes:    ct.VisitedNodes(),
		Limit:           limit,
		Confined:        ct.ConfinedTo(limit),
	}
	if err != nil {
		return rep, fmt.Errorf("pef: %w", err)
	}
	return rep, nil
}

// ConfineOneRobot runs the Theorem 5.1 adversary against alg on an n-node
// ring (n >= 3) for the given horizon under ctx: the robot visits at most
// two nodes, whatever alg does. On cancellation it returns the partial
// report together with ctx's error.
//
// Deprecated: ConfineOneRobot is a thin wrapper kept for the classic call
// sites; new code should use Run with a Family "confine-one" Scenario.
func ConfineOneRobot(ctx context.Context, alg Algorithm, n, horizon int) (ConfinementReport, error) {
	return confine(ctx, scenario.FamilyConfineOne, alg, n, 1, horizon, 2)
}

// ConfineTwoRobots runs the Theorem 4.1 adversary against alg on an n-node
// ring (n >= 4) under ctx: the two robots visit at most three nodes. On
// cancellation it returns the partial report together with ctx's error.
//
// Deprecated: ConfineTwoRobots is a thin wrapper kept for the classic call
// sites; new code should use Run with a Family "confine-two" Scenario.
func ConfineTwoRobots(ctx context.Context, alg Algorithm, n, horizon int) (ConfinementReport, error) {
	return confine(ctx, scenario.FamilyConfineTwo, alg, n, 2, horizon, 3)
}

// Static returns the dynamics in which every edge is always present.
func Static(n int) Dynamics {
	return fsync.Oblivious{G: dyngraph.NewStatic(n)}
}

// Bernoulli returns the dynamics in which each edge is independently
// present with probability p each round.
func Bernoulli(n int, p float64, seed uint64) Dynamics {
	return fsync.Oblivious{G: dynamics.NewBernoulli(n, p, seed)}
}

// EventualMissing returns a dynamics whose given edge disappears forever at
// time from, the rest staying recurrent — the paper's canonical hard case.
func EventualMissing(n, edge, from int, seed uint64) Dynamics {
	base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0x51DE)
	return fsync.Oblivious{G: dyngraph.NewEventualMissing(base, edge, from)}
}

// TInterval returns a T-interval-connected dynamics: connected snapshots,
// missing edge stable per window of t rounds.
func TInterval(n, t int, seed uint64) Dynamics {
	return fsync.Oblivious{G: dynamics.NewTInterval(n, t, seed)}
}

// Chain returns a connected-over-time chain: the ring with edge cut missing
// forever, the rest recurrent.
func Chain(n, cut int, seed uint64) Dynamics {
	base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0xC4A1)
	return fsync.Oblivious{G: dynamics.NewChain(base, cut)}
}

// Roving returns the roving-missing-edge dynamics: exactly one edge absent
// at each instant, rotating every period rounds.
func Roving(n, period int) Dynamics {
	return fsync.Oblivious{G: dynamics.NewRovingMissing(n, period)}
}

// BlockPointed returns the budgeted stress adversary: every edge a robot
// points to is removed, but no edge stays absent more than budget
// consecutive rounds.
func BlockPointed(n, budget int) Dynamics {
	return adversary.NewBlockPointed(n, budget)
}

// RegisterBuiltins installs the paper's algorithms and the baseline suite
// into the name registry used by the command-line tools. Call once.
func RegisterBuiltins() {
	core.RegisterBuiltins()
	baseline.RegisterBuiltins()
}

// Algorithms returns the registered algorithm names, and NewAlgorithm
// instantiates one by name (after RegisterBuiltins).
func Algorithms() []string { return robot.Names() }

// NewAlgorithm instantiates a registered algorithm by name.
func NewAlgorithm(name string) (Algorithm, error) { return robot.New(name) }

// Scenario is a declarative scenario specification: ring size, team,
// algorithm, placement policy, dynamics family with parameters, horizon
// and seed, with a deterministic JSON encoding (Encode/DecodeScenario) and
// a canonical string ID. Running the same Scenario always replays the same
// execution bit for bit.
type Scenario = scenario.Spec

// ScenarioParams is the dynamics parameter bag of a Scenario.
type ScenarioParams = scenario.Params

// ScenarioVerdict is the property oracle's structured outcome for one
// scenario: the enforced expectation, the observed outcome, scalar metrics
// (cover time, max revisit gap, distinct nodes visited), and a violation
// message when the paper's predicate failed.
type ScenarioVerdict = scenario.Verdict

// GenConfig bounds the scenario generators' sampled parameter space.
type GenConfig = scenario.GenConfig

// CampaignConfig parameterizes a generated-scenario sweep, and Campaign is
// its completed result; see RunCampaign.
type (
	CampaignConfig = scenario.CampaignConfig
	Campaign       = scenario.Campaign
)

// DecodeScenario parses and validates a deterministic-JSON scenario.
func DecodeScenario(data []byte) (Scenario, error) { return scenario.DecodeSpec(data) }

// ScenarioGenerators lists the registered scenario generator families
// ("uniform", "boundary", "markov", "adversarial").
func ScenarioGenerators() []string {
	gens := scenario.Generators()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// GenerateScenarios draws count scenario specs from the named generator
// family under one seed. Equal arguments always return identical specs,
// and a longer stream extends a shorter one.
func GenerateScenarios(family string, cfg GenConfig, seed uint64, count int) ([]Scenario, error) {
	return scenario.Generate(family, cfg, seed, count)
}

// RunScenario executes one scenario and checks the paper's predicate for
// it: exploration where Table 1 says possible, confinement under the
// impossibility adversaries. It never panics; failures come back as error
// verdicts.
func RunScenario(s Scenario) ScenarioVerdict { return scenario.Run(s) }

// RunCampaign generates Count scenarios per seed from the configured
// generator and shards them across a worker pool, checking every one
// against the property oracle. Campaign reports (WriteReport, WriteJSON)
// are byte-identical for any worker count.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	return scenario.RunCampaign(ctx, cfg)
}
