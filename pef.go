// Package pef is the public API of this repository: a faithful, executable
// reproduction of
//
//	Marjorie Bournat, Swan Dubois, Franck Petit.
//	"Computability of Perpetual Exploration in Highly Dynamic Rings."
//	ICDCS 2017 (arXiv:1612.05767).
//
// The paper characterizes exactly how many fully synchronous, anonymous,
// silent robots are necessary and sufficient to visit every node of a
// connected-over-time ring infinitely often. This package exposes:
//
//   - the paper's three algorithms (PEF_3+, PEF_2, PEF_1),
//   - the evolving-ring simulator and a library of dynamics,
//   - the impossibility adversaries of Theorems 4.1 and 5.1 as runnable
//     adaptive dynamics,
//   - one-call exploration and confinement runs with verdict reports,
//   - the experiment harness regenerating every table and figure of the
//     paper (see EXPERIMENTS.md),
//   - the scenario subsystem: declarative scenario specs, seeded random
//     generators over the full parameter space, and a property oracle
//     checking the paper's predicates over sharded campaigns of generated
//     scenarios (see SCENARIOS.md).
//
// Quick start:
//
//	report, err := pef.Explore(pef.ExploreConfig{
//		Nodes:     8,
//		Robots:    3,
//		Algorithm: pef.PEF3Plus(),
//		Dynamics:  pef.EventualMissing(8, 0, 32, 42),
//		Horizon:   1600,
//		Seed:      42,
//	})
//	// report.Covered == 8, report.MaxGap bounded: perpetual exploration.
package pef

import (
	"context"
	"fmt"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/scenario"
	"pef/internal/spec"
)

// Algorithm is a uniform deterministic robot algorithm.
type Algorithm = robot.Algorithm

// Chirality fixes how a robot maps its local left/right onto the ring.
type Chirality = robot.Chirality

// Chirality values.
const (
	RightIsCW  = robot.RightIsCW
	RightIsCCW = robot.RightIsCCW
)

// Dynamics decides which edges are present each round (possibly adaptively,
// reacting to robot positions).
type Dynamics = fsync.Dynamics

// Placement is one robot's initial node and chirality.
type Placement = fsync.Placement

// ExplorationReport is the finite-horizon perpetual-exploration verdict.
type ExplorationReport = spec.ExplorationReport

// PEF3Plus returns Algorithm 1 of the paper: perpetual exploration with
// k >= 3 robots on any connected-over-time ring of size n > k.
func PEF3Plus() Algorithm { return core.PEF3Plus{} }

// PEF2 returns the Section 4.2 algorithm: 2 robots on the 3-node ring.
func PEF2() Algorithm { return core.PEF2{} }

// PEF1 returns the Section 5.2 algorithm: 1 robot on the 2-node ring.
func PEF1() Algorithm { return core.PEF1{} }

// ExploreConfig parameterizes a one-call exploration run.
type ExploreConfig struct {
	// Nodes is the ring size n (>= 2).
	Nodes int
	// Robots is the team size k (< n). Ignored when Placements is set.
	Robots int
	// Algorithm is the uniform algorithm; required.
	Algorithm Algorithm
	// Dynamics supplies the evolving ring; required (see Static,
	// Bernoulli, EventualMissing, TInterval, Chain, Roving, BlockPointed).
	Dynamics Dynamics
	// Horizon is the number of synchronous rounds to execute.
	Horizon int
	// Seed drives the pseudo-random initial placement.
	Seed uint64
	// Placements optionally fixes the initial configuration explicitly.
	Placements []Placement
}

// Explore runs a fully synchronous execution and reports coverage, cover
// time and the maximum revisit gap — the empirical signature of perpetual
// exploration.
func Explore(cfg ExploreConfig) (ExplorationReport, error) {
	if cfg.Algorithm == nil || cfg.Dynamics == nil {
		return ExplorationReport{}, fmt.Errorf("pef: ExploreConfig requires Algorithm and Dynamics")
	}
	n := cfg.Dynamics.Ring().Size()
	if cfg.Nodes != 0 && cfg.Nodes != n {
		return ExplorationReport{}, fmt.Errorf("pef: Nodes=%d disagrees with dynamics ring size %d", cfg.Nodes, n)
	}
	placements := cfg.Placements
	if placements == nil {
		if cfg.Robots <= 0 || cfg.Robots >= n {
			return ExplorationReport{}, fmt.Errorf("pef: need 0 < Robots < Nodes, got k=%d n=%d", cfg.Robots, n)
		}
		placements = fsync.RandomPlacements(n, cfg.Robots, prng.NewSource(cfg.Seed))
	}
	vt := spec.NewVisitTracker(n)
	sim, err := fsync.New(fsync.Config{
		Algorithm:  cfg.Algorithm,
		Dynamics:   cfg.Dynamics,
		Placements: placements,
		Observers:  []fsync.Observer{vt},
	})
	if err != nil {
		return ExplorationReport{}, fmt.Errorf("pef: %w", err)
	}
	sim.Run(cfg.Horizon)
	return vt.Report(), nil
}

// ConfinementReport is the outcome of an impossibility-adversary run.
type ConfinementReport struct {
	// DistinctVisited is how many distinct nodes the robots ever occupied.
	DistinctVisited int
	// VisitedNodes lists them.
	VisitedNodes []int
	// Limit is the confinement bound predicted by the paper (2 for one
	// robot, 3 for two robots).
	Limit int
	// Confined reports DistinctVisited <= Limit.
	Confined bool
}

// ConfineOneRobot runs the Theorem 5.1 adversary against alg on an n-node
// ring (n >= 3) for the given horizon: the robot visits at most two nodes,
// whatever alg does.
func ConfineOneRobot(alg Algorithm, n, horizon int) (ConfinementReport, error) {
	adv := adversary.NewOneRobotConfinement(n, 0, 0)
	ct := spec.NewConfinementTracker()
	sim, err := fsync.New(fsync.Config{
		Algorithm:  alg,
		Dynamics:   adv,
		Placements: []Placement{{Node: 0, Chirality: RightIsCW}},
		Observers:  []fsync.Observer{ct},
	})
	if err != nil {
		return ConfinementReport{}, fmt.Errorf("pef: %w", err)
	}
	sim.Run(horizon)
	return ConfinementReport{
		DistinctVisited: ct.Distinct(),
		VisitedNodes:    ct.VisitedNodes(),
		Limit:           2,
		Confined:        ct.ConfinedTo(2),
	}, nil
}

// ConfineTwoRobots runs the Theorem 4.1 adversary against alg on an n-node
// ring (n >= 4): the two robots visit at most three nodes.
func ConfineTwoRobots(alg Algorithm, n, horizon int) (ConfinementReport, error) {
	adv := adversary.NewTwoRobotConfinement(n, 0, 0, 1)
	ct := spec.NewConfinementTracker()
	sim, err := fsync.New(fsync.Config{
		Algorithm: alg,
		Dynamics:  adv,
		Placements: []Placement{
			{Node: 0, Chirality: RightIsCW},
			{Node: 1, Chirality: RightIsCCW},
		},
		Observers: []fsync.Observer{ct},
	})
	if err != nil {
		return ConfinementReport{}, fmt.Errorf("pef: %w", err)
	}
	sim.Run(horizon)
	return ConfinementReport{
		DistinctVisited: ct.Distinct(),
		VisitedNodes:    ct.VisitedNodes(),
		Limit:           3,
		Confined:        ct.ConfinedTo(3),
	}, nil
}

// Static returns the dynamics in which every edge is always present.
func Static(n int) Dynamics {
	return fsync.Oblivious{G: dyngraph.NewStatic(n)}
}

// Bernoulli returns the dynamics in which each edge is independently
// present with probability p each round.
func Bernoulli(n int, p float64, seed uint64) Dynamics {
	return fsync.Oblivious{G: dynamics.NewBernoulli(n, p, seed)}
}

// EventualMissing returns a dynamics whose given edge disappears forever at
// time from, the rest staying recurrent — the paper's canonical hard case.
func EventualMissing(n, edge, from int, seed uint64) Dynamics {
	base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0x51DE)
	return fsync.Oblivious{G: dyngraph.NewEventualMissing(base, edge, from)}
}

// TInterval returns a T-interval-connected dynamics: connected snapshots,
// missing edge stable per window of t rounds.
func TInterval(n, t int, seed uint64) Dynamics {
	return fsync.Oblivious{G: dynamics.NewTInterval(n, t, seed)}
}

// Chain returns a connected-over-time chain: the ring with edge cut missing
// forever, the rest recurrent.
func Chain(n, cut int, seed uint64) Dynamics {
	base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0xC4A1)
	return fsync.Oblivious{G: dynamics.NewChain(base, cut)}
}

// Roving returns the roving-missing-edge dynamics: exactly one edge absent
// at each instant, rotating every period rounds.
func Roving(n, period int) Dynamics {
	return fsync.Oblivious{G: dynamics.NewRovingMissing(n, period)}
}

// BlockPointed returns the budgeted stress adversary: every edge a robot
// points to is removed, but no edge stays absent more than budget
// consecutive rounds.
func BlockPointed(n, budget int) Dynamics {
	return adversary.NewBlockPointed(n, budget)
}

// RegisterBuiltins installs the paper's algorithms and the baseline suite
// into the name registry used by the command-line tools. Call once.
func RegisterBuiltins() {
	core.RegisterBuiltins()
	baseline.RegisterBuiltins()
}

// Algorithms returns the registered algorithm names, and NewAlgorithm
// instantiates one by name (after RegisterBuiltins).
func Algorithms() []string { return robot.Names() }

// NewAlgorithm instantiates a registered algorithm by name.
func NewAlgorithm(name string) (Algorithm, error) { return robot.New(name) }

// Scenario is a declarative scenario specification: ring size, team,
// algorithm, placement policy, dynamics family with parameters, horizon
// and seed, with a deterministic JSON encoding (Encode/DecodeScenario) and
// a canonical string ID. Running the same Scenario always replays the same
// execution bit for bit.
type Scenario = scenario.Spec

// ScenarioParams is the dynamics parameter bag of a Scenario.
type ScenarioParams = scenario.Params

// ScenarioVerdict is the property oracle's structured outcome for one
// scenario: the enforced expectation, the observed outcome, scalar metrics
// (cover time, max revisit gap, distinct nodes visited), and a violation
// message when the paper's predicate failed.
type ScenarioVerdict = scenario.Verdict

// GenConfig bounds the scenario generators' sampled parameter space.
type GenConfig = scenario.GenConfig

// CampaignConfig parameterizes a generated-scenario sweep, and Campaign is
// its completed result; see RunCampaign.
type (
	CampaignConfig = scenario.CampaignConfig
	Campaign       = scenario.Campaign
)

// DecodeScenario parses and validates a deterministic-JSON scenario.
func DecodeScenario(data []byte) (Scenario, error) { return scenario.DecodeSpec(data) }

// ScenarioGenerators lists the registered scenario generator families
// ("uniform", "boundary", "markov", "adversarial").
func ScenarioGenerators() []string {
	gens := scenario.Generators()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// GenerateScenarios draws count scenario specs from the named generator
// family under one seed. Equal arguments always return identical specs,
// and a longer stream extends a shorter one.
func GenerateScenarios(family string, cfg GenConfig, seed uint64, count int) ([]Scenario, error) {
	return scenario.Generate(family, cfg, seed, count)
}

// RunScenario executes one scenario and checks the paper's predicate for
// it: exploration where Table 1 says possible, confinement under the
// impossibility adversaries. It never panics; failures come back as error
// verdicts.
func RunScenario(s Scenario) ScenarioVerdict { return scenario.Run(s) }

// RunCampaign generates Count scenarios per seed from the configured
// generator and shards them across a worker pool, checking every one
// against the property oracle. Campaign reports (WriteReport, WriteJSON)
// are byte-identical for any worker count.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	return scenario.RunCampaign(ctx, cfg)
}
