package pef

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var registerOnce sync.Once

func register() { registerOnce.Do(RegisterBuiltins) }

func TestExploreStaticRing(t *testing.T) {
	rep, err := Explore(context.Background(), ExploreConfig{
		Robots:    3,
		Algorithm: PEF3Plus(),
		Dynamics:  Static(8),
		Horizon:   200,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PerpetuallyExplored(64) {
		t.Fatalf("static ring not explored: %s", rep)
	}
}

func TestExploreEventualMissing(t *testing.T) {
	rep, err := Explore(context.Background(), ExploreConfig{
		Robots:    3,
		Algorithm: PEF3Plus(),
		Dynamics:  EventualMissing(8, 2, 30, 7),
		Horizon:   1600,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 8 || rep.CoverTime < 0 {
		t.Fatalf("eventual-missing ring not covered: %s", rep)
	}
}

func TestExploreAllThreeAlgorithmsInTheirRange(t *testing.T) {
	cases := []struct {
		name string
		cfg  ExploreConfig
	}{
		{"pef3+ n=5 k=3", ExploreConfig{Robots: 3, Algorithm: PEF3Plus(), Dynamics: Bernoulli(5, 0.6, 3), Horizon: 1200, Seed: 3}},
		{"pef2 n=3 k=2", ExploreConfig{Robots: 2, Algorithm: PEF2(), Dynamics: Bernoulli(3, 0.6, 4), Horizon: 1200, Seed: 4}},
		{"pef1 n=2 k=1", ExploreConfig{Robots: 1, Algorithm: PEF1(), Dynamics: Bernoulli(2, 0.6, 5), Horizon: 800, Seed: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, err := Explore(context.Background(), c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Covered != rep.Nodes {
				t.Fatalf("not covered: %s", rep)
			}
			if rep.MaxGap > c.cfg.Horizon/2 {
				t.Fatalf("gap too large: %s", rep)
			}
		})
	}
}

func TestExploreValidation(t *testing.T) {
	if _, err := Explore(context.Background(), ExploreConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Explore(context.Background(), ExploreConfig{Algorithm: PEF1(), Dynamics: Static(4), Robots: 4}); err == nil {
		t.Error("k = n accepted")
	}
	if _, err := Explore(context.Background(), ExploreConfig{Algorithm: PEF1(), Dynamics: Static(4), Robots: 1, Nodes: 5}); err == nil {
		t.Error("inconsistent Nodes accepted")
	}
}

func TestConfineOneRobotFacade(t *testing.T) {
	rep, err := ConfineOneRobot(context.Background(), PEF3Plus(), 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confined || rep.DistinctVisited > 2 {
		t.Fatalf("one robot escaped: %+v", rep)
	}
	if len(rep.VisitedNodes) != rep.DistinctVisited {
		t.Fatal("VisitedNodes inconsistent")
	}
}

func TestConfineTwoRobotsFacade(t *testing.T) {
	rep, err := ConfineTwoRobots(context.Background(), PEF3Plus(), 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confined || rep.DistinctVisited > 3 {
		t.Fatalf("two robots escaped: %+v", rep)
	}
	if rep.Limit != 3 {
		t.Fatalf("limit = %d", rep.Limit)
	}
}

func TestBlockPointedDynamicsFacade(t *testing.T) {
	rep, err := Explore(context.Background(), ExploreConfig{
		Robots:    3,
		Algorithm: PEF3Plus(),
		Dynamics:  BlockPointed(6, 3),
		Horizon:   1200,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 6 {
		t.Fatalf("block-pointed defeated PEF_3+: %s", rep)
	}
}

func TestChainAndRovingDynamics(t *testing.T) {
	for name, dyn := range map[string]Dynamics{
		"chain":  Chain(6, 2, 13),
		"roving": Roving(6, 3),
	} {
		rep, err := Explore(context.Background(), ExploreConfig{
			Robots:    3,
			Algorithm: PEF3Plus(),
			Dynamics:  dyn,
			Horizon:   1800,
			Seed:      13,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Covered != 6 {
			t.Fatalf("%s not covered: %s", name, rep)
		}
	}
}

func TestTIntervalDynamics(t *testing.T) {
	rep, err := Explore(context.Background(), ExploreConfig{
		Robots:    3,
		Algorithm: PEF3Plus(),
		Dynamics:  TInterval(8, 4, 17),
		Horizon:   1600,
		Seed:      17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 8 {
		t.Fatalf("t-interval not covered: %s", rep)
	}
}

func TestRegistryFacade(t *testing.T) {
	register()
	names := Algorithms()
	if len(names) == 0 {
		t.Fatal("no registered algorithms")
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"pef1", "pef2", "pef3+", "bounce-on-missing"} {
		if !strings.Contains(joined, want) {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	alg, err := NewAlgorithm("pef3+")
	if err != nil || alg.Name() != "pef3+" {
		t.Fatalf("NewAlgorithm: %v", err)
	}
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestExplicitPlacements(t *testing.T) {
	rep, err := Explore(context.Background(), ExploreConfig{
		Algorithm: PEF3Plus(),
		Dynamics:  Static(6),
		Horizon:   120,
		Placements: []Placement{
			{Node: 0, Chirality: RightIsCW},
			{Node: 2, Chirality: RightIsCCW},
			{Node: 4, Chirality: RightIsCW},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 6 {
		t.Fatalf("explicit placements run failed: %s", rep)
	}
}
