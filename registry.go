package pef

import (
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/ring"
	"pef/internal/scenario"
)

// Registry is the extension surface of the library: it maps the names a
// declarative Scenario carries — algorithm, dynamics family, oracle
// property (the Expect field) — to their implementations. Every layer
// resolves through a Registry: Scenario validation, the generators, the
// oracle, the minimizer and the pefscenarios CLI listings, so registered
// extensions enter campaigns exactly like the built-ins.
//
// The process default (DefaultRegistry, extended by the package-level
// Register* functions) serves the common case; NewRegistry returns an
// independent registry — preloaded with the built-ins — for embedding
// programs that want isolated extension sets, routed into runs via
// WithRegistry and into campaigns via CampaignConfig.Registry.
type Registry = scenario.Registry

// AlgorithmDescriptor registers a robot algorithm under a
// Scenario-referable name.
type AlgorithmDescriptor = scenario.AlgorithmDescriptor

// FamilyDescriptor registers a dynamics family: typed/validated
// parameters, a seeded constructor (Graph for oblivious families — which
// compose — or Build for adaptive ones), a default oracle expectation,
// optional pinned placements, and the sampling hooks the "registered"
// generator uses.
type FamilyDescriptor = scenario.FamilyDescriptor

// ParamField declares one Scenario parameter a family reads, with its
// valid range; validation checks declared fields generically.
type ParamField = scenario.ParamField

// ParamKind says how a declared parameter is interpreted.
type ParamKind = scenario.ParamKind

// Parameter kinds.
const (
	ParamInt   = scenario.ParamInt
	ParamFloat = scenario.ParamFloat
)

// Property is a named oracle predicate; a Scenario's Expect field selects
// which registered property judges its runs.
type Property = scenario.Property

// PropertyInput is everything a property predicate may judge.
type PropertyInput = scenario.PropertyInput

// PropertyResult is a property's judgment of one run.
type PropertyResult = scenario.PropertyResult

// EvolvingGraph is an oblivious evolving ring: a pure function of
// (edge, time) deciding edge presence. FamilyDescriptor.Graph returns
// one; implement it to register custom oblivious dynamics.
type EvolvingGraph = dyngraph.EvolvingGraph

// Ring is the underlying static ring (V, E) every dynamics evolves over;
// NewRing constructs one for custom EvolvingGraph implementations.
type Ring = ring.Ring

// NewRing returns the static n-node ring.
func NewRing(n int) Ring { return ring.New(n) }

// Rand is the deterministic pseudo-random source handed to
// FamilyDescriptor.Sample hooks.
type Rand = prng.Source

// NewRegistry returns a fresh registry preloaded with the built-in
// algorithms, families and properties, independent of the process
// default.
func NewRegistry() *Registry { return scenario.NewRegistry() }

// DefaultRegistry returns the process-wide registry used by Scenario
// validation, Run and campaigns unless overridden.
func DefaultRegistry() *Registry { return scenario.DefaultRegistry() }

// RegisterAlgorithm installs an algorithm descriptor in the default
// registry. It fails on an empty or reserved name, a nil constructor, or
// a name collision — names are provenance, never silently replaced.
func RegisterAlgorithm(name string, d AlgorithmDescriptor) error {
	return scenario.DefaultRegistry().RegisterAlgorithm(name, d)
}

// RegisterFamily installs a dynamics-family descriptor in the default
// registry; Scenario.Family values select it, the "registered" generator
// samples it when Explorable, and pefscenarios -list enumerates it. It
// fails on an empty or reserved name, a descriptor with neither Graph nor
// Build, or a name collision.
func RegisterFamily(name string, d FamilyDescriptor) error {
	return scenario.DefaultRegistry().RegisterFamily(name, d)
}

// RegisterProperty installs an oracle property in the default registry;
// Scenario.Expect values select it. It fails on an empty or reserved
// name, a nil predicate, or a name collision.
func RegisterProperty(name string, p Property) error {
	return scenario.DefaultRegistry().RegisterProperty(name, p)
}

// ScenarioFamilies lists the dynamics families registered in the default
// registry, in registration (canonical) order.
func ScenarioFamilies() []string { return scenario.DefaultRegistry().FamilyNames() }

// ScenarioProperties lists the oracle properties registered in the
// default registry, in registration (canonical) order.
func ScenarioProperties() []string { return scenario.DefaultRegistry().PropertyNames() }

// Compose modes accepted by ComposeFamilies.
const (
	ComposeUnion      = dynamics.ComposeUnion
	ComposeIntersect  = dynamics.ComposeIntersect
	ComposeInterleave = dynamics.ComposeInterleave
)

// ComposeFamilies builds a family descriptor folding the named registered
// oblivious families' edge schedules together under mode (ComposeUnion,
// ComposeIntersect or ComposeInterleave): the members share the
// scenario's parameter bag, each builds from a seed derived from the
// scenario seed and its position, and the composition samples and
// validates through the members' own declarations. Register the result
// (conventionally under a "compose:" name) to make it campaign-reachable;
// the built-in compose:union, compose:intersect and compose:interleave
// families are exactly such registrations.
func ComposeFamilies(mode string, members ...string) (FamilyDescriptor, error) {
	return scenario.DefaultRegistry().ComposeFamilies(mode, members...)
}

// PeriodicTimetable returns the dynamics whose edge e follows the fixed
// appearance timetable patterns[e] (one presence bit per instant,
// repeating): the periodically-varying rings of Flocchini–Mans–Santoro,
// subway timetables, duty-cycled radio links. There is one pattern per
// edge (len(patterns) is the ring size); every pattern must contain at
// least one presence bit, which makes the dynamics connected-over-time.
// The seeded counterpart behind the registered "periodic" family draws
// random timetables of a given period; this constructor pins them
// exactly.
func PeriodicTimetable(patterns [][]bool) (Dynamics, error) {
	g, err := dynamics.NewPeriodic(len(patterns), patterns)
	if err != nil {
		return nil, err
	}
	return fsync.Oblivious{G: g}, nil
}

// ComposeDynamics folds the edge schedules of existing oblivious
// evolving graphs directly (the imperative counterpart of
// ComposeFamilies): union keeps an edge when any member has it,
// intersect when all do, interleave alternates rounds among members.
func ComposeDynamics(mode string, members ...EvolvingGraph) (Dynamics, error) {
	g, err := dynamics.NewComposed(mode, members...)
	if err != nil {
		return nil, err
	}
	return fsync.Oblivious{G: g}, nil
}
