package pef

import (
	"context"
	"io"
	"iter"

	"pef/internal/fsync"
	"pef/internal/scenario"
	"pef/internal/trace"
)

// Observer receives one event per completed simulation round; attach one
// to a Run via WithObservers. The event's slices are reused by the engine:
// observers that retain data must Clone (see RoundEvent).
type Observer = fsync.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = fsync.ObserverFunc

// RoundEvent describes one completed round, as delivered to observers.
type RoundEvent = fsync.RoundEvent

// Option customizes a Run beyond what the declarative Scenario pins down.
type Option func(*runSettings)

type runSettings struct {
	opts      scenario.RunOptions
	traceSink io.Writer
}

// WithPlacements fixes the initial configuration explicitly, overriding
// the scenario's placement policy (the confinement adversaries keep their
// proofs' initial configuration regardless).
func WithPlacements(placements ...Placement) Option {
	return func(s *runSettings) { s.opts.Placements = placements }
}

// WithObservers attaches extra observers to the simulation — diagnostics,
// custom metrics, convergence probes — in addition to the oracle's own
// trackers.
func WithObservers(obs ...Observer) Option {
	return func(s *runSettings) { s.opts.Observers = append(s.opts.Observers, obs...) }
}

// WithTrace streams the execution to w as one JSON round record per line
// (the format read by trace.ReadRounds and the pefjourney/pefmirror
// tools), turning any Run into a replayable trace without retaining
// history in memory.
func WithTrace(w io.Writer) Option {
	return func(s *runSettings) { s.traceSink = w }
}

// WithTelemetry attaches an instrumentation bundle to the run: the
// oracle and the simulators record counters into it (rounds, pool
// traffic, per-family wall time). Unlike WithObservers it never forces a
// campaign block off the lockstep engine, and the verdict is
// byte-identical with or without it.
func WithTelemetry(t *Telemetry) Option {
	return func(s *runSettings) { s.opts.Telemetry = t }
}

// WithAlgorithm overrides the scenario's algorithm registry lookup with
// an explicit Algorithm value — the bridge from imperative configurations
// (custom or unregistered algorithms) into the unified Run path. The
// scenario's Algorithm name then only labels the verdict.
func WithAlgorithm(alg Algorithm) Option {
	return func(s *runSettings) { s.opts.Algorithm = alg }
}

// WithDynamics overrides the scenario's dynamics-family build with an
// explicit Dynamics value (its ring size must equal the scenario's Ring).
// The scenario's Family then only labels the verdict.
func WithDynamics(dyn Dynamics) Option {
	return func(s *runSettings) { s.opts.Dynamics = dyn }
}

// WithCancelCheckEvery sets the number of rounds between context
// cancellation polls (default 256): smaller values cancel long horizons
// faster at slightly higher per-round cost.
func WithCancelCheckEvery(rounds int) Option {
	return func(s *runSettings) { s.opts.CheckEvery = rounds }
}

// WithRegistry resolves the scenario's algorithm, family and property
// names through r instead of the process-default registry — the bridge
// for embedding programs that keep isolated extension sets (see
// NewRegistry).
func WithRegistry(r *Registry) Option {
	return func(s *runSettings) { s.opts.Registry = r }
}

// Run is the unified, context-aware entry point of this package: it
// executes one Scenario — declarative or assembled via options — under
// ctx and returns the property oracle's structured verdict for it.
// Explore, ConfineOneRobot and ConfineTwoRobots are thin wrappers over
// Run; campaigns stream it at scale via StreamCampaign.
//
// Configuration problems (non-positive horizon, unknown names,
// inconsistent overrides) return a non-nil error. When ctx is cancelled
// mid-run, Run returns the partial verdict — metrics over the rounds that
// executed, Outcome "cancelled" — together with ctx's error. Predicate
// violations are not errors: they come back as OK=false verdicts with a
// nil error.
func Run(ctx context.Context, s Scenario, options ...Option) (ScenarioVerdict, error) {
	var set runSettings
	for _, o := range options {
		o(&set)
	}
	if set.traceSink != nil {
		logger := trace.NewJSONLogger(set.traceSink)
		set.opts.Observers = append(set.opts.Observers, logger)
		v, err := scenario.RunWith(ctx, s, set.opts)
		if err == nil {
			err = logger.Err()
		}
		return v, err
	}
	return scenario.RunWith(ctx, s, set.opts)
}

// RunSeeds executes one Scenario shape across many seeds — the
// seed-batched entry point of the bit-parallel lockstep engine. The
// scenario runs once per seed (its Seed field is replaced by each
// element), and eligible runs — registered oblivious dynamics on a ring
// of at most 64 nodes, an algorithm with a bit-parallel core, no
// imperative overrides — advance up to 64 seeds per machine word in one
// engine instance. Ineligible runs fall back to the scalar engine.
// Either way verdict i is byte-identical to Run with Seed = seeds[i].
//
// Per-seed failures (invalid specs, panics) come back as error verdicts,
// like campaign workers record them; the returned error is non-nil only
// when ctx was cancelled, in which case verdicts of unfinished seeds
// carry Outcome "cancelled".
func RunSeeds(ctx context.Context, s Scenario, seeds []uint64, options ...Option) ([]ScenarioVerdict, error) {
	var set runSettings
	for _, o := range options {
		o(&set)
	}
	specs := make([]scenario.Spec, len(seeds))
	for i, seed := range seeds {
		sp := s
		sp.Seed = seed
		specs[i] = sp
	}
	if set.traceSink != nil {
		// Observers force the scalar path, which runs seeds in order, so
		// the trace is the seeds' round streams concatenated.
		logger := trace.NewJSONLogger(set.traceSink)
		set.opts.Observers = append(set.opts.Observers, logger)
		vs := scenario.RunBlock(ctx, specs, set.opts)
		if err := logger.Err(); err != nil {
			return vs, err
		}
		return vs, ctx.Err()
	}
	return scenario.RunBlock(ctx, specs, set.opts), ctx.Err()
}

// CampaignAggregate is the online campaign aggregation state consumed by
// StreamCampaign loops: Add verdicts as they stream, render reports that
// are byte-identical to RunCampaign's, snapshot a Checkpoint at any time.
// It holds O(aggregate) memory — never O(scenarios).
type CampaignAggregate = scenario.Aggregate

// CampaignCheckpoint is the serialized state of a partially executed
// campaign; see CampaignConfig.Resume and Campaign.Checkpoint.
type CampaignCheckpoint = scenario.Checkpoint

// NewCampaignAggregate creates the aggregation state for the campaign
// described by cfg. When cfg.Resume is set, the checkpointed prefix is
// folded in, so adding the resumed verdict stream reproduces the
// uninterrupted campaign's reports exactly.
func NewCampaignAggregate(cfg CampaignConfig) (*CampaignAggregate, error) {
	return scenario.NewAggregate(cfg)
}

// DecodeCampaignCheckpoint parses and validates an encoded campaign
// checkpoint.
func DecodeCampaignCheckpoint(data []byte) (*CampaignCheckpoint, error) {
	return scenario.DecodeCheckpoint(data)
}

// StreamCampaign generates cfg.Count scenarios per seed and shards them
// across the worker pool, yielding one (verdict, error) pair per scenario
// in canonical order — byte-identical for any worker count — while
// holding only a worker-window of state. It is the bounded-memory form of
// RunCampaign: fold the verdicts into a CampaignAggregate for reports, or
// consume them directly for online processing.
//
// A configuration failure yields exactly one (zero verdict, err) pair.
// After a context cancellation, remaining scenarios are still yielded in
// order with identity-filled error verdicts and err set to ctx.Err().
// When cfg.Resume is set, the checkpointed prefix is skipped and only the
// remaining scenarios stream.
func StreamCampaign(ctx context.Context, cfg CampaignConfig) iter.Seq2[ScenarioVerdict, error] {
	return scenario.StreamCampaign(ctx, cfg)
}

// Minimize deterministically shrinks a failing scenario — one whose
// verdict violates its predicate or errors — to a smaller reproducer,
// greedily lowering horizon, ring size, team size and dynamics parameters
// while preserving the failure. It is idempotent, returns passing
// scenarios unchanged, and re-runs the scenario per probe (so its cost is
// a small multiple of one run). Use it on campaign violations to turn a
// sampled counterexample into a minimal, shareable one.
//
// Minimize resolves names through the default registry; shrink
// violations found under a custom registry with its Registry.Minimize
// method instead.
func Minimize(s Scenario) Scenario { return scenario.Minimize(s) }
