package pef

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func exploreScenario() Scenario {
	return Scenario{
		Version:   1,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: "even",
		Family:    "static",
		Horizon:   400,
		Seed:      3,
	}
}

func TestRunDeclarativeScenario(t *testing.T) {
	v, err := Run(context.Background(), exploreScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Outcome != "explored" || v.Covered != 8 {
		t.Fatalf("unified Run verdict: %+v", v)
	}
	// Run and the legacy RunScenario agree bit for bit.
	if legacy := RunScenario(exploreScenario()); legacy != v {
		t.Fatalf("Run diverges from RunScenario:\n %+v\nvs %+v", v, legacy)
	}
}

// TestRunRejectsNonPositiveHorizon is the regression test for the silent
// zero-round bug: Explore used to accept Horizon <= 0 and report
// Covered=0 without executing anything.
func TestRunRejectsNonPositiveHorizon(t *testing.T) {
	s := exploreScenario()
	s.Horizon = 0
	if _, err := Run(context.Background(), s); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("Run accepted a zero horizon (err=%v)", err)
	}
	s.Horizon = -5
	if _, err := Run(context.Background(), s); err == nil {
		t.Fatal("Run accepted a negative horizon")
	}
	if _, err := Explore(context.Background(), ExploreConfig{
		Robots: 3, Algorithm: PEF3Plus(), Dynamics: Static(8), Horizon: 0, Seed: 1,
	}); err == nil || !strings.Contains(err.Error(), "Horizon") {
		t.Fatalf("Explore accepted a zero horizon (err=%v)", err)
	}
}

func TestRunOptionOverrides(t *testing.T) {
	var rounds atomic.Int64
	s := exploreScenario()
	s.Algorithm = "external-walker" // not in any registry: override must carry it
	v, err := Run(context.Background(), s,
		WithAlgorithm(PEF3Plus()),
		WithDynamics(Static(8)),
		WithPlacements(
			Placement{Node: 0, Chirality: RightIsCW},
			Placement{Node: 2, Chirality: RightIsCW},
			Placement{Node: 4, Chirality: RightIsCW},
		),
		WithObservers(ObserverFunc(func(ev RoundEvent) { rounds.Add(1) })),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Covered != 8 {
		t.Fatalf("override run verdict: %+v", v)
	}
	if got := rounds.Load(); got != int64(s.Horizon) {
		t.Fatalf("observer saw %d rounds, want %d", got, s.Horizon)
	}
	// Mismatched override ring is a configuration error.
	if _, err := Run(context.Background(), exploreScenario(), WithDynamics(Static(5))); err == nil {
		t.Fatal("dynamics/ring mismatch accepted")
	}
}

func TestRunWithTraceStreamsRounds(t *testing.T) {
	var buf bytes.Buffer
	s := exploreScenario()
	s.Horizon = 25
	if _, err := Run(context.Background(), s, WithTrace(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("trace sink received %d lines, want 25", len(lines))
	}
	if !strings.Contains(lines[0], `"t":0`) {
		t.Fatalf("trace line is not a round record: %s", lines[0])
	}
}

func TestRunCancellationReturnsPartialVerdict(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first poll: zero additional rounds run
	s := exploreScenario()
	s.Horizon = 100000
	v, err := Run(ctx, s, WithCancelCheckEvery(16))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if v.Outcome != "cancelled" || v.OK {
		t.Fatalf("cancelled verdict: %+v", v)
	}

	// The deprecated wrappers surface the same partial-report behavior.
	if _, err := Explore(ctx, ExploreConfig{
		Robots: 3, Algorithm: PEF3Plus(), Dynamics: Static(8), Horizon: 100000, Seed: 1,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Explore did not propagate cancellation: %v", err)
	}
	if _, err := ConfineOneRobot(ctx, PEF3Plus(), 8, 100000); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConfineOneRobot did not propagate cancellation: %v", err)
	}
}

// TestConfineWrappersMatchUnifiedPath pins the wrapper refactor: the
// deprecated confinement calls must reproduce the oracle's own adversary
// runs exactly.
func TestConfineWrappersMatchUnifiedPath(t *testing.T) {
	rep, err := ConfineOneRobot(context.Background(), PEF3Plus(), 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Run(context.Background(), Scenario{
		Version: 1, Ring: 8, Robots: 1, Algorithm: "pef3+", Placement: "adjacent",
		Family: "confine-one", Horizon: 400, Seed: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != "confined" || !v.OK || v.Distinct != rep.DistinctVisited {
		t.Fatalf("wrapper and unified path disagree: %+v vs %+v", rep, v)
	}
}
