package pef

import (
	"context"
	"reflect"
	"testing"
)

func TestScenarioFacadeGenerateAndRun(t *testing.T) {
	if got := ScenarioGenerators(); !reflect.DeepEqual(got, []string{"uniform", "boundary", "markov", "adversarial", "registered"}) {
		t.Fatalf("ScenarioGenerators() = %v", got)
	}
	specs, err := GenerateScenarios("uniform", GenConfig{MaxRing: 8}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := GenerateScenarios("uniform", GenConfig{MaxRing: 8}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, again) {
		t.Fatal("facade generation is not deterministic")
	}
	// Encode → decode → run round-trips through the declarative layer.
	data, err := specs[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, specs[0]) {
		t.Fatal("facade decode changed the scenario")
	}
	v := RunScenario(back)
	if v.Err != "" || !v.OK {
		t.Fatalf("generated scenario failed its predicate: %+v", v)
	}
	if v2 := RunScenario(specs[0]); !reflect.DeepEqual(v, v2) {
		t.Fatal("replaying the same scenario changed the verdict")
	}
}

func TestScenarioFacadeCampaign(t *testing.T) {
	c, err := RunCampaign(context.Background(), CampaignConfig{
		Generator: "adversarial",
		Gen:       GenConfig{MaxRing: 8},
		Count:     20,
		Seeds:     []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Verdicts) != 40 {
		t.Fatalf("campaign produced %d verdicts, want 40", len(c.Verdicts))
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("campaign violations: %+v", c.Violations())
	}
}
