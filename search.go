package pef

import (
	"context"

	"pef/internal/search"
)

// SearchConfig parameterizes a coverage-guided scenario search: a
// generational loop that runs campaign blocks through the engine, reads
// back per-family predicate margins, and steers the next generation's
// budget toward the theorem boundary — a seeded UCB bandit over the
// explorable-family pool plus parameter-space mutation of the
// lowest-margin surviving specs. Fixed-seed searches are byte-identical
// for any worker count and lane width; see SCENARIOS.md
// "Coverage-guided search".
type SearchConfig = search.Config

// SearchResult is a finished search: the boundary report (tightest
// observed margin per family × metric), the near-violation corpus, the
// bandit state, and every violation with its minimized reproducer.
type SearchResult = search.Result

// SearchProgress is the per-generation callback payload of a search.
type SearchProgress = search.Progress

// SearchCheckpoint is a resumable search snapshot; resuming reproduces
// the uninterrupted run's boundary report byte for byte.
type SearchCheckpoint = search.Checkpoint

// SearchBoundaryReport is the versioned boundary-report document
// pefbenchdiff diffs run over run.
type SearchBoundaryReport = search.BoundaryReport

// ErrSearchHalted is the sentinel a SearchConfig.OnGeneration hook
// returns to stop a search cleanly after the current generation.
var ErrSearchHalted = search.ErrHalted

// Search runs a coverage-guided scenario search to completion (or a
// clean halt) and returns its final state.
func Search(ctx context.Context, cfg SearchConfig) (*SearchResult, error) {
	return search.Run(ctx, cfg)
}

// DecodeSearchCheckpoint parses and validates an encoded search
// checkpoint, verifying its content checksum.
func DecodeSearchCheckpoint(data []byte) (*SearchCheckpoint, error) {
	return search.DecodeCheckpoint(data)
}
