package pef

import (
	"io"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// Telemetry is the engine's instrumentation bundle: counters, gauges and
// distribution histograms recorded by every layer of the stack (worker
// pool, oracle, lockstep router, simulators). Create one with
// NewTelemetry, attach it via WithTelemetry or CampaignConfig.Telemetry,
// and read it at any time with Snapshot — from your own code or by
// serving it over HTTP with ServeTelemetry. Telemetry is observational
// only: verdicts, reports, checkpoints and goldens are byte-identical
// with it on or off, for any worker and lane-width setting.
type Telemetry = scenario.Telemetry

// NewTelemetry creates an instrumentation bundle backed by a fresh
// metric registry.
func NewTelemetry() *Telemetry { return scenario.NewTelemetry() }

// TelemetrySnapshot is a point-in-time copy of every instrument: counter
// values, gauge levels with high-water marks, and histogram summaries
// with exact value→count cells. It marshals to deterministic JSON
// (sorted keys) and merges commutatively across shards.
type TelemetrySnapshot = telemetry.Snapshot

// Tracer emits structured JSONL campaign lifecycle events
// (campaign-start, block-retired, checkpoint-written) with monotonic
// sequence numbers and no wall clocks: a trace of a deterministic
// campaign is byte-identical for any worker count. Attach one via
// CampaignConfig.Trace; a nil *Tracer is a valid no-op.
type Tracer = telemetry.Tracer

// NewTracer creates a tracer writing JSONL event records to w.
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// TelemetryServer is the opt-in HTTP introspection endpoint: the live
// snapshot as JSON under /metrics plus net/http/pprof under
// /debug/pprof. Close it when done; Close on nil is a no-op.
type TelemetryServer = telemetry.Server

// ServeTelemetry starts the introspection endpoint on addr (":0" picks a
// free port; use Addr to discover it), serving t's live snapshot. A nil
// t serves empty snapshots — the pprof routes still work.
func ServeTelemetry(addr string, t *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, t.Snapshot)
}
