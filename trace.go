package pef

import (
	"fmt"

	"pef/internal/adversary"
	"pef/internal/dynamics"
	"pef/internal/fsync"
	"pef/internal/spec"
	"pef/internal/trace"
)

// Periodic returns a periodically varying ring: edge e is present at t iff
// patterns[e][t mod len(patterns[e])] — public-transport style timetables.
// It returns an error if a pattern is empty or never true (such an edge
// would break the connected-over-time assumption).
func Periodic(n int, patterns [][]bool) (Dynamics, error) {
	g, err := dynamics.NewPeriodic(n, patterns)
	if err != nil {
		return nil, fmt.Errorf("pef: %w", err)
	}
	return fsync.Oblivious{G: g}, nil
}

// ExploreWithDiagram is Explore plus a rendered space-time diagram of the
// first rows instants (Figures 2/3 style: robots, towers, missing edges).
func ExploreWithDiagram(cfg ExploreConfig, rows int) (ExplorationReport, string, error) {
	placements, n, err := explorePlacements(cfg)
	if err != nil {
		return ExplorationReport{}, "", err
	}
	vt := spec.NewVisitTracker(n)
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   cfg.Algorithm,
		Dynamics:    cfg.Dynamics,
		Placements:  placements,
		Observers:   []fsync.Observer{vt, rec},
		RecordGraph: true,
	})
	if err != nil {
		return ExplorationReport{}, "", fmt.Errorf("pef: %w", err)
	}
	sim.Run(cfg.Horizon)
	return vt.Report(), renderDiagram(sim, rec, n, rows), nil
}

// ConfineOneRobotWithDiagram is ConfineOneRobot plus the space-time diagram
// of the Theorem 5.1 schedule (Figure 3).
func ConfineOneRobotWithDiagram(alg Algorithm, n, horizon, rows int) (ConfinementReport, string, error) {
	return confineWithDiagram(adversary.NewOneRobotConfinement(n, 0, 0),
		[]Placement{{Node: 0, Chirality: RightIsCW}}, alg, n, horizon, rows, 2)
}

// ConfineTwoRobotsWithDiagram is ConfineTwoRobots plus the space-time
// diagram of the Theorem 4.1 schedule (Figure 2).
func ConfineTwoRobotsWithDiagram(alg Algorithm, n, horizon, rows int) (ConfinementReport, string, error) {
	return confineWithDiagram(adversary.NewTwoRobotConfinement(n, 0, 0, 1),
		[]Placement{
			{Node: 0, Chirality: RightIsCW},
			{Node: 1, Chirality: RightIsCCW},
		}, alg, n, horizon, rows, 3)
}

func confineWithDiagram(dyn Dynamics, placements []Placement, alg Algorithm, n, horizon, rows, limit int) (ConfinementReport, string, error) {
	ct := spec.NewConfinementTracker()
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    dyn,
		Placements:  placements,
		Observers:   []fsync.Observer{ct, rec},
		RecordGraph: true,
	})
	if err != nil {
		return ConfinementReport{}, "", fmt.Errorf("pef: %w", err)
	}
	sim.Run(horizon)
	rep := ConfinementReport{
		DistinctVisited: ct.Distinct(),
		VisitedNodes:    ct.VisitedNodes(),
		Limit:           limit,
		Confined:        ct.ConfinedTo(limit),
	}
	return rep, renderDiagram(sim, rec, n, rows), nil
}

func renderDiagram(sim *fsync.Simulator, rec *fsync.SnapshotRecorder, n, rows int) string {
	if rows <= 0 {
		return ""
	}
	snaps := make([]fsync.Snapshot, rec.Len())
	for t := range snaps {
		snaps[t] = rec.At(t)
	}
	return trace.Header(n) + trace.SpaceTimeString(sim.RecordedGraph(), snaps, 0, rows)
}
